package mpi

import (
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/fault"
)

// Collective operations, built on point-to-point messaging and one-sided
// window deposits in a separate communicator context so they never match
// user traffic. Every collective has a checked variant returning typed
// errors (invalid arguments as *ArgumentError, transfer failures as the
// send/receive error taxonomy, expired CollTimeout watchdogs as
// sci.ErrConnectionLost / fault.Timeout); the classic panicking methods
// are thin wrappers over the checked path. Algorithm selection happens in
// collalg.go.

// Tags for collective phases.
const (
	tagBarrier = 1 << 20
	tagBcast   = 2 << 20
	tagReduce  = 3 << 20
	tagGather  = 4 << 20
	tagScatter = 5 << 20
)

// mustColl panics on a collective error (the legacy non-checked surface).
func mustColl(err error) {
	if err != nil {
		panic(err)
	}
}

// checkRoot validates a root rank argument.
func (c *Comm) checkRoot(call string, root int) error {
	if root < 0 || root >= c.Size() {
		return argErrf(call, "root %d out of range for %d ranks", root, c.Size())
	}
	return nil
}

// waitColl awaits an internal collective receive, bounded by CollTimeout
// (AutoTimeout scales the bound with the world; see timeouts.go): an
// expired wait surfaces as sci.ErrConnectionLost when the awaited peer's
// node is down, a *RevokedRankError when it was revoked, or a *fault.Error
// of kind Timeout otherwise.
func (c *Comm) waitColl(r *Request, src, tag int) error {
	return c.waitCollT(r, src, tag, c.rk.w.collTimeoutEff())
}

// waitCollT is waitColl with an explicit bound (the shrink confirmation
// barrier forces the scaled bound even in runs whose CollTimeout is 0).
func (c *Comm) waitCollT(r *Request, src, tag int, to time.Duration) error {
	if to <= 0 {
		_, err := r.WaitChecked()
		return err
	}
	v, ok := c.p.AwaitTimeout(r.done, to)
	if !ok {
		c.rk.dev.stats.sendTimeouts.Add(1)
		c.rk.w.cfg.Tracer.Record(c.p.Now(), c.rk.actor, "fault",
			"collective watchdog expired (src %d tag %d) after %v", src, tag, to)
		if src != AnySource {
			if err := c.peerLost(c.worldRank(src)); err != nil {
				return err
			}
		}
		return &fault.Error{Kind: fault.Timeout, From: c.rk.id, To: src, At: c.p.Now()}
	}
	if err, ok := v.(error); ok {
		return err
	}
	return nil
}

// recvColl is the internal collective receive: irecv + waitColl.
func (c *Comm) recvColl(buf []byte, count int, dt *datatype.Type, src, tag int) error {
	r := c.irecv(buf, count, dt, src, tag, c.ctx)
	return c.waitColl(r, src, tag)
}

// sendrecvColl is the deadlock-free internal exchange of the ring and
// doubling algorithms, with the receive side under the watchdog.
func (c *Comm) sendrecvColl(sendBuf []byte, sendCount int, sendType *datatype.Type, dst, sendTag int,
	recvBuf []byte, recvCount int, recvType *datatype.Type, src, recvTag int) error {
	r := c.irecv(recvBuf, recvCount, recvType, src, recvTag, c.ctx)
	if err := c.send(sendBuf, sendCount, sendType, dst, sendTag, c.ctx); err != nil {
		return err
	}
	return c.waitColl(r, src, recvTag)
}

// Barrier blocks until every rank has entered it. It panics on transfer
// failures; use BarrierChecked under fault plans.
func (c *Comm) Barrier() { mustColl(c.BarrierChecked()) }

// BarrierChecked is Barrier returning failures as typed errors
// (dissemination algorithm, log2(P) rounds of zero-byte messages).
func (c *Comm) BarrierChecked() error {
	if c.Size() == 1 {
		return nil
	}
	op := c.collBegin(collBarrier, CollP2P, 0)
	return op.end(c.collective().barrierDissemination())
}

func (c *Comm) barrierDissemination() error {
	size := c.Size()
	me := c.Rank()
	for round, dist := 0, 1; dist < size; round, dist = round+1, dist*2 {
		to := (me + dist) % size
		from := (me - dist + size) % size
		r := c.irecv(nil, 0, datatype.Byte, from, tagBarrier+round, c.ctx)
		if err := c.send(nil, 0, datatype.Byte, to, tagBarrier+round, c.ctx); err != nil {
			return err
		}
		if err := c.waitColl(r, from, tagBarrier+round); err != nil {
			return err
		}
	}
	return nil
}

// Bcast broadcasts count elements of dt from root to every rank. It
// panics on failures; use BcastChecked under fault plans.
func (c *Comm) Bcast(buf []byte, count int, dt *datatype.Type, root int) {
	mustColl(c.BcastChecked(buf, count, dt, root))
}

// BcastChecked is Bcast returning failures as typed errors. The engine
// picks between the binomial tree over point-to-point messages and the
// chunk-pipelined one-sided tree over window deposits.
func (c *Comm) BcastChecked(buf []byte, count int, dt *datatype.Type, root int) error {
	if err := c.checkRoot("Bcast", root); err != nil {
		return err
	}
	size := c.Size()
	if size == 1 {
		return nil
	}
	bytes := dt.Size() * int64(count)
	alg := c.chooseCollAlg(collBcast, size, bytes, bytes)
	op := c.collBegin(collBcast, alg, bytes)
	cc := c.collective()
	if alg != CollOneSided {
		return op.end(cc.bcastBinomial(buf, count, dt, root))
	}
	if dt.Contiguous() {
		return op.end(cc.bcastOneSided(buf[:bytes], root))
	}
	// Non-contiguous payloads travel as their ff linearization: the root
	// packs, everyone else unpacks after the contiguous broadcast.
	view := c.newReduceViewRaw(buf, count, dt, c.Rank() == root)
	err := cc.bcastOneSided(view, root)
	if err == nil && c.Rank() != root {
		c.unpackCollView(view, buf, count, dt)
	}
	return op.end(err)
}

func (c *Comm) bcastBinomial(buf []byte, count int, dt *datatype.Type, root int) error {
	size := c.Size()
	vrank := (c.Rank() - root + size) % size
	// Receive from parent.
	if vrank != 0 {
		parent := ((vrank & (vrank - 1)) + root) % size
		if err := c.recvColl(buf, count, dt, parent, tagBcast); err != nil {
			return err
		}
	}
	// Forward to children.
	for bit := lowestSetOrSize(vrank, size); bit > 0; bit >>= 1 {
		child := vrank | bit
		if child != vrank && child < size {
			if err := c.send(buf, count, dt, (child+root)%size, tagBcast, c.ctx); err != nil {
				return err
			}
		}
	}
	return nil
}

// newReduceViewRaw linearizes a buffer for contiguous transport (pack only
// when the rank actually holds payload, i.e. the root of a bcast).
func (c *Comm) newReduceViewRaw(buf []byte, count int, dt *datatype.Type, pack bool) []byte {
	bytes := dt.Size() * int64(count)
	if pack {
		base := dt.Base()
		if base == nil {
			base = datatype.Byte
		}
		return c.newReduceView(buf, count, dt, base).buf
	}
	return make([]byte, bytes)
}

// unpackCollView unpacks a linearized payload back into the user layout.
func (c *Comm) unpackCollView(view, buf []byte, count int, dt *datatype.Type) {
	v := &reduceView{base: datatype.Byte, elems: len(view), buf: view}
	v.writeback(c, buf, count, dt)
}

// lowestSetOrSize returns the highest bit a node may address as a child in
// the binomial tree: for vrank 0 the full width, otherwise the bit below
// the lowest set bit of vrank.
func lowestSetOrSize(vrank, size int) int {
	if vrank == 0 {
		b := 1
		for b < size {
			b <<= 1
		}
		return b >> 1
	}
	return (vrank & -vrank) >> 1
}

// Reduce combines count elements of dt from every rank with op, leaving
// the result in recv on root (recv may be nil elsewhere). send must hold
// the rank's contribution. Derived datatypes reduce through their ff
// linearization as long as all leaves share one basic type. It panics on
// failures; use ReduceChecked under fault plans.
func (c *Comm) Reduce(send, recv []byte, count int, dt *datatype.Type, op Op, root int) {
	mustColl(c.ReduceChecked(send, recv, count, dt, op, root))
}

// ReduceChecked is Reduce returning failures as typed errors (binomial
// fold over the base-typed reduction views).
func (c *Comm) ReduceChecked(send, recv []byte, count int, dt *datatype.Type, op Op, root int) error {
	if err := c.checkRoot("Reduce", root); err != nil {
		return err
	}
	base, err := checkReduceDT("Reduce", dt)
	if err != nil {
		return err
	}
	bytes := dt.Size() * int64(count)
	cop := c.collBegin(collReduce, CollP2P, bytes)
	view := c.newReduceView(send, count, dt, base)
	acc := make([]byte, bytes)
	copy(acc, view.buf)
	if c.Size() > 1 {
		if err := c.collective().reduceBinomial(acc, view.elems, base, op, root); err != nil {
			return cop.end(err)
		}
	}
	if c.Rank() == root {
		res := reduceView{base: base, elems: view.elems, buf: acc}
		res.writeback(c, recv, count, dt)
	}
	return cop.end(nil)
}

// reduceBinomial folds the base-typed views up the binomial tree to root:
// receive from children, combine, send to the parent.
func (c *Comm) reduceBinomial(acc []byte, elems int, base *datatype.Type, op Op, root int) error {
	size := c.Size()
	vrank := (c.Rank() - root + size) % size
	tmp := make([]byte, len(acc))
	for bit := 1; bit < size; bit <<= 1 {
		if vrank&bit != 0 {
			parent := ((vrank &^ bit) + root) % size
			return c.send(acc, elems, base, parent, tagReduce, c.ctx)
		}
		child := vrank | bit
		if child < size {
			if err := c.recvColl(tmp, elems, base, (child+root)%size, tagReduce); err != nil {
				return err
			}
			c.combineColl(op, base, acc, tmp, elems)
		}
	}
	return nil
}

// Allreduce leaves op over every rank's send buffer in every rank's recv
// buffer. It panics on failures; use AllreduceChecked under fault plans.
func (c *Comm) Allreduce(send, recv []byte, count int, dt *datatype.Type, op Op) {
	mustColl(c.AllreduceChecked(send, recv, count, dt, op))
}

// AllreduceChecked is Allreduce returning failures as typed errors. The
// engine picks among reduce+bcast (small messages), recursive doubling,
// the bandwidth-optimal ring (reduce-scatter + allgather), and the ring
// over one-sided window deposits; all variants run on the contiguous
// base-typed views, so derived datatypes work everywhere.
func (c *Comm) AllreduceChecked(send, recv []byte, count int, dt *datatype.Type, op Op) error {
	base, err := checkReduceDT("Allreduce", dt)
	if err != nil {
		return err
	}
	bytes := dt.Size() * int64(count)
	size := c.Size()
	view := c.newReduceView(send, count, dt, base)
	if size == 1 {
		res := reduceView{base: base, elems: view.elems, buf: view.buf}
		res.writeback(c, recv, count, dt)
		return nil
	}
	alg := c.chooseCollAlg(collAllreduce, size, bytes, bytes)
	cop := c.collBegin(collAllreduce, alg, bytes)
	acc := make([]byte, bytes)
	copy(acc, view.buf)
	cc := c.collective()
	switch alg {
	case CollRecDbl:
		err = cc.allreduceRecDbl(acc, view.elems, base, op)
	case CollRing:
		err = cc.allreduceRing(acc, view.elems, base, op, false)
	case CollOneSided:
		err = cc.allreduceRing(acc, view.elems, base, op, true)
	default:
		// Reduce to rank 0, then broadcast, both on the packed view.
		err = cc.reduceBinomial(acc, view.elems, base, op, 0)
		if err == nil {
			err = cc.bcastBinomial(acc, view.elems, base, 0)
		}
	}
	if err == nil {
		res := reduceView{base: base, elems: view.elems, buf: acc}
		res.writeback(c, recv, count, dt)
	}
	return cop.end(err)
}

// Gather collects each rank's send buffer into recv at root, ordered by
// rank (recv needs size*count elements at root; ignored elsewhere). It
// panics on failures; use GatherChecked under fault plans.
func (c *Comm) Gather(send []byte, count int, dt *datatype.Type, recv []byte, root int) {
	mustColl(c.GatherChecked(send, count, dt, recv, root))
}

// GatherChecked is Gather returning failures as typed errors. The root
// posts all receives up front and then waits, so senders complete
// concurrently instead of being drained one rank at a time.
func (c *Comm) GatherChecked(send []byte, count int, dt *datatype.Type, recv []byte, root int) error {
	if err := c.checkRoot("Gather", root); err != nil {
		return err
	}
	cc := c.collective()
	bytes := dt.Size() * int64(count)
	op := c.collBegin(collGather, CollP2P, bytes)
	if c.Rank() != root {
		return op.end(cc.send(send, count, dt, root, tagGather, cc.ctx))
	}
	copy(recv[int64(root)*bytes:], send[:bytes])
	reqs := make([]*Request, c.Size())
	for i := 0; i < c.Size(); i++ {
		if i == root {
			continue
		}
		reqs[i] = cc.irecv(recv[int64(i)*bytes:int64(i+1)*bytes], count, dt, i, tagGather, cc.ctx)
	}
	for i, r := range reqs {
		if r == nil {
			continue
		}
		if err := cc.waitColl(r, i, tagGather); err != nil {
			return op.end(err)
		}
	}
	return op.end(nil)
}

// Scatter distributes contiguous count-element pieces of send (at root) to
// every rank's recv buffer. It panics on failures; use ScatterChecked
// under fault plans.
func (c *Comm) Scatter(send []byte, count int, dt *datatype.Type, recv []byte, root int) {
	mustColl(c.ScatterChecked(send, count, dt, recv, root))
}

// ScatterChecked is Scatter returning failures as typed errors.
func (c *Comm) ScatterChecked(send []byte, count int, dt *datatype.Type, recv []byte, root int) error {
	if err := c.checkRoot("Scatter", root); err != nil {
		return err
	}
	cc := c.collective()
	bytes := dt.Size() * int64(count)
	op := c.collBegin(collScatter, CollP2P, bytes)
	if c.Rank() != root {
		return op.end(cc.recvColl(recv, count, dt, root, tagScatter))
	}
	copy(recv, send[int64(root)*bytes:int64(root+1)*bytes])
	for i := 0; i < c.Size(); i++ {
		if i == root {
			continue
		}
		if err := cc.send(send[int64(i)*bytes:int64(i+1)*bytes], count, dt, i, tagScatter, cc.ctx); err != nil {
			return op.end(err)
		}
	}
	return op.end(nil)
}
