package mpi

import (
	"fmt"

	"scimpich/internal/datatype"
)

// Collective operations, built on point-to-point messaging in a separate
// communicator context so they never match user traffic.

// Tags for collective phases.
const (
	tagBarrier = 1 << 20
	tagBcast   = 2 << 20
	tagReduce  = 3 << 20
	tagGather  = 4 << 20
	tagScatter = 5 << 20
)

// Barrier blocks until every rank has entered it (dissemination algorithm,
// log2(P) rounds of zero-byte messages).
func (c *Comm) Barrier() {
	cc := c.collective()
	size := c.Size()
	if size == 1 {
		return
	}
	me := c.Rank()
	for round, dist := 0, 1; dist < size; round, dist = round+1, dist*2 {
		to := (me + dist) % size
		from := (me - dist + size) % size
		r := cc.irecv(nil, 0, datatype.Byte, from, tagBarrier+round, cc.ctx)
		cc.send(nil, 0, datatype.Byte, to, tagBarrier+round, cc.ctx)
		r.Wait()
	}
}

// Bcast broadcasts count elements of dt from root to every rank (binomial
// tree).
func (c *Comm) Bcast(buf []byte, count int, dt *datatype.Type, root int) {
	cc := c.collective()
	size := c.Size()
	if size == 1 {
		return
	}
	vrank := (c.Rank() - root + size) % size
	// Receive from parent.
	if vrank != 0 {
		parent := ((vrank & (vrank - 1)) + root) % size
		cc.recv(buf, count, dt, parent, tagBcast, cc.ctx)
	}
	// Forward to children.
	for bit := lowestSetOrSize(vrank, size); bit > 0; bit >>= 1 {
		child := vrank | bit
		if child != vrank && child < size {
			cc.send(buf, count, dt, (child+root)%size, tagBcast, cc.ctx)
		}
	}
}

// lowestSetOrSize returns the highest bit a node may address as a child in
// the binomial tree: for vrank 0 the full width, otherwise the bit below
// the lowest set bit of vrank.
func lowestSetOrSize(vrank, size int) int {
	if vrank == 0 {
		b := 1
		for b < size {
			b <<= 1
		}
		return b >> 1
	}
	return (vrank & -vrank) >> 1
}

// Reduce combines count elements of the basic type dt from every rank with
// op, leaving the result in recv on root (recv may be nil elsewhere).
// send must hold the rank's contribution.
func (c *Comm) Reduce(send, recv []byte, count int, dt *datatype.Type, op Op, root int) {
	if dt.Kind() != datatype.KindBasic {
		panic(fmt.Sprintf("mpi: Reduce requires a basic datatype, got %s", dt))
	}
	cc := c.collective()
	size := c.Size()
	bytes := dt.Size() * int64(count)
	acc := make([]byte, bytes)
	copy(acc, send[:bytes])
	if size > 1 {
		vrank := (c.Rank() - root + size) % size
		// Binomial reduction: receive from children, fold, send to parent.
		tmp := make([]byte, bytes)
		for bit := 1; bit < size; bit <<= 1 {
			if vrank&bit != 0 {
				parent := ((vrank &^ bit) + root) % size
				cc.send(acc, count, dt, parent, tagReduce, cc.ctx)
				break
			}
			child := vrank | bit
			if child < size {
				cc.recv(tmp, count, dt, (child+root)%size, tagReduce, cc.ctx)
				combine(op, dt, acc, tmp, count)
			}
		}
	}
	if c.Rank() == root {
		copy(recv[:bytes], acc)
	}
}

// Allreduce is Reduce to rank 0 followed by Bcast.
func (c *Comm) Allreduce(send, recv []byte, count int, dt *datatype.Type, op Op) {
	c.Reduce(send, recv, count, dt, op, 0)
	c.Bcast(recv, count, dt, 0)
}

// Gather collects each rank's send buffer into recv at root, ordered by
// rank (recv needs size*count elements at root; ignored elsewhere).
func (c *Comm) Gather(send []byte, count int, dt *datatype.Type, recv []byte, root int) {
	cc := c.collective()
	bytes := dt.Size() * int64(count)
	if c.Rank() == root {
		copy(recv[int64(root)*bytes:], send[:bytes])
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			cc.recv(recv[int64(i)*bytes:int64(i+1)*bytes], count, dt, i, tagGather, cc.ctx)
		}
		return
	}
	cc.send(send, count, dt, root, tagGather, cc.ctx)
}

// Scatter distributes contiguous count-element pieces of send (at root) to
// every rank's recv buffer.
func (c *Comm) Scatter(send []byte, count int, dt *datatype.Type, recv []byte, root int) {
	cc := c.collective()
	bytes := dt.Size() * int64(count)
	if c.Rank() == root {
		copy(recv, send[int64(root)*bytes:int64(root+1)*bytes])
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			cc.send(send[int64(i)*bytes:int64(i+1)*bytes], count, dt, i, tagScatter, cc.ctx)
		}
		return
	}
	cc.recv(recv, count, dt, root, tagScatter, cc.ctx)
}
