package mpi

// The torus collective runtime: the paper's §6 scaling outlook (8 nodes per
// ringlet, 3-D torus, 512 nodes) running the runtime's ring allreduce as a
// fabric-native workload. Where the full protocol world is confined to one
// locale (its ranks share ports and windows at zero delay), the torus
// runtime distributes one node actor per torus node across the locales of a
// sim.Fabric, partitioned by contiguous z-plane blocks: all cross-locale
// interaction is a Locale.Send carrying the route's propagation latency —
// at least one segment latency, the engine's conservative lookahead.
//
// The allreduce schedule is exactly the collective engine's: every step
// forwards the block ringSendBlock(me, step, size) picks, the same rotation
// allreduceRing drives through the point-to-point and one-sided protocols.
// The reduction operator is uint64 wrapping addition — exactly associative
// and commutative — so chunk digests, checksums, flight dumps and
// completion times are bit-identical across engines and shard counts.
//
// Shard locality of the flow solve is structural: with ring-neighbor-only
// traffic under dimension-ordered routing, the route of node i to i+1 stays
// inside i's z-plane except for the final z-hop at a plane boundary, and no
// two routes share a segment. Every link is touched by exactly one locale's
// network, flows never span locales, and each flow is its own max-min
// component — per-locale solves produce bit-identical rates to the
// monolithic oracle network.

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"scimpich/internal/flow"
	"scimpich/internal/obs"
	"scimpich/internal/obs/flight"
	"scimpich/internal/ring"
	"scimpich/internal/sci"
	"scimpich/internal/sim"
	"scimpich/internal/torus"
)

// TorusConfig parameterizes a torus machine run.
type TorusConfig struct {
	DX, DY, DZ int // torus dimensions; nodes = DX*DY*DZ
	Shards     int // z-plane blocks (fabric locales); must divide DZ

	ChunkBytes     int64         // bytes per allreduce chunk transfer
	LinkBW         float64       // per-segment bandwidth, bytes/second
	SrcCap         float64       // per-node sustained deposit rate
	SegmentLatency time.Duration // per-segment propagation delay

	SampleEvery int           // flight sample period in steps (<=0: 64)
	Registry    *obs.Registry // optional shared metrics registry
}

// DefaultTorusConfig returns a machine calibrated like the paper's testbed
// (166 MHz ringlets, Table 2 sustained put bandwidth) with the given
// partitioning.
func DefaultTorusConfig(dx, dy, dz, shards int) TorusConfig {
	sc := sci.DefaultConfig(8)
	return TorusConfig{
		DX: dx, DY: dy, DZ: dz, Shards: shards,
		ChunkBytes:     64 << 10,
		LinkBW:         ring.BandwidthForMHz(sc.LinkMHz),
		SrcCap:         sc.SustainedPutBW,
		SegmentLatency: sc.SegmentLatency,
		SampleEvery:    64,
	}
}

// TorusResult summarizes a completed run.
type TorusResult struct {
	Nodes    int
	Shards   int
	End      time.Duration // final virtual time
	Events   uint64        // events executed by the engine
	Windows  uint64        // barrier rounds (0 on the sequential engine)
	Checksum uint64        // wrapping sum of the reduced vector
	Steps    int           // allreduce steps per node
}

// torusDelivery is one chunk handed to the successor node.
type torusDelivery struct {
	to    int // destination node id
	step  int
	chunk int
	val   uint64
}

// torusNode is one machine node: an actor confined to its locale.
type torusNode struct {
	m       *TorusWorld
	id      int
	loc     sim.Locale
	net     *flow.Network
	next    int // successor on the logical ring
	nextLoc int
	route   []flow.Hop    // dimension-ordered path to successor
	delay   time.Duration // propagation latency of route

	chunks   []uint64 // per-chunk reduction digests
	step     int
	sendDone bool
	recvDone bool
	inbox    []*torusDelivery // arrivals for steps we have not reached yet

	log      []flight.Event // local samples, merged deterministically post-run
	finished bool
	doneAt   time.Duration
}

// TorusWorld is the full torus plus its node actors, bound to a fabric.
type TorusWorld struct {
	cfg    TorusConfig
	fab    sim.Fabric
	top    *torus.Topology
	place  *Placement
	nodes  []*torusNode
	total  int // allreduce steps per node
	reg    *obs.Registry
	chunks *obs.Counter
	moved  *obs.Counter

	deliverF func(any)
}

// TorusLookahead derives the conservative lookahead of a partition from the
// topology: the minimum latency among links crossing it, falling back to
// the configured segment latency when no link crosses (single shard).
func TorusLookahead(top *torus.Topology, assign []int, segment time.Duration) time.Duration {
	if la := flow.MinLatency(top.CrossShardLinks(assign)); la > 0 {
		return la
	}
	return segment
}

// NewTorusFabric builds the conservative-parallel fabric for cfg: one shard
// per z-plane block, lookahead derived from the links crossing the
// partition.
func NewTorusFabric(cfg TorusConfig) sim.Fabric {
	top, assign := buildTorusTopology(cfg)
	return sim.NewShardedEngine(cfg.Shards, TorusLookahead(top, assign, cfg.SegmentLatency))
}

// NewTorusOracle builds the sequential-oracle fabric for cfg: the same
// locale count over one sequential engine, the differential-testing
// baseline for the sharded fabric.
func NewTorusOracle(cfg TorusConfig) sim.Fabric {
	top, assign := buildTorusTopology(cfg)
	return sim.NewSeqFabric(sim.NewEngine(), cfg.Shards, TorusLookahead(top, assign, cfg.SegmentLatency))
}

// NewTorusWorldOn builds the torus machine on an existing fabric. On a
// sharded engine every locale gets its own flow network (the per-shard
// solve); on any other fabric all locales share one monolithic network —
// the oracle baseline whose per-event costs grow with the whole machine's
// flow count.
func NewTorusWorldOn(f sim.Fabric, cfg TorusConfig) *TorusWorld {
	top, assign := buildTorusTopology(cfg)
	if f.Locales() != cfg.Shards {
		panic(fmt.Sprintf("mpi: torus config wants %d locales, fabric has %d", cfg.Shards, f.Locales()))
	}
	nets := make([]*flow.Network, cfg.Shards)
	if _, sharded := f.(*sim.ShardedEngine); sharded {
		for i := range nets {
			nets[i] = flow.NewNetworkOn(f.Locale(i))
			nets[i].SetMetrics(cfg.Registry)
		}
	} else {
		net := flow.NewNetworkOn(f.Locale(0))
		net.SetMetrics(cfg.Registry)
		for i := range nets {
			nets[i] = net
		}
	}
	return buildTorusWorld(cfg, f, top, assign, nets)
}

func buildTorusTopology(cfg TorusConfig) (*torus.Topology, []int) {
	if cfg.DX*cfg.DY*cfg.DZ < 2 {
		panic("mpi: torus machine needs at least two nodes")
	}
	top := torus.New(cfg.DX, cfg.DY, cfg.DZ, cfg.LinkBW, nil).SetLinkLatency(cfg.SegmentLatency)
	return top, top.PartitionZ(cfg.Shards)
}

func buildTorusWorld(cfg TorusConfig, fab sim.Fabric, top *torus.Topology, assign []int, nets []*flow.Network) *TorusWorld {
	n := top.Nodes()
	m := &TorusWorld{
		cfg: cfg, fab: fab, top: top,
		place: NewPlacement(assign, cfg.Shards),
		nodes: make([]*torusNode, n),
		total: 2 * (n - 1),
		reg:   cfg.Registry,
	}
	if m.reg != nil {
		m.chunks = m.reg.Counter("mpi.torus.chunks")
		m.moved = m.reg.Counter("mpi.torus.bytes")
	}
	m.deliverF = func(arg any) {
		d := arg.(*torusDelivery)
		m.nodes[d.to].onRecv(d)
	}
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		shard := m.place.ShardOf(i)
		nd := &torusNode{
			m: m, id: i, loc: fab.Locale(shard), net: nets[shard],
			next: next, nextLoc: m.place.ShardOf(next),
			route:  flow.Path(top.Route(i, next)...),
			chunks: make([]uint64, n),
		}
		nd.delay = flow.PathLatency(nd.route)
		for c := range nd.chunks {
			nd.chunks[c] = torusChunkInit(i, c)
		}
		m.nodes[i] = nd
	}
	return m
}

// Placement returns the node-to-locale placement of the machine.
func (m *TorusWorld) Placement() *Placement { return m.place }

// Fabric returns the fabric the machine runs on.
func (m *TorusWorld) Fabric() sim.Fabric { return m.fab }

// torusChunkInit is the deterministic initial digest of (node, chunk) —
// splitmix64 over the pair, so every input is distinct and the reduced
// values exercise all 64 bits.
func torusChunkInit(node, chunk int) uint64 {
	z := uint64(node)<<32 ^ uint64(chunk) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// beginStep starts the node's transfer for the current step, or finishes
// the node when all steps are done.
func (nd *torusNode) beginStep() {
	m := nd.m
	if nd.step >= m.total {
		var sum uint64
		for _, v := range nd.chunks {
			sum += v
		}
		nd.finished = true
		nd.doneAt = nd.loc.Now()
		nd.log = append(nd.log, flight.Event{At: nd.doneAt, Kind: flight.KCommit,
			A: int64(nd.step), B: int64(sum)})
		return
	}
	step, c := nd.step, ringSendBlock(nd.id, nd.step, len(m.nodes))
	val := nd.chunks[c]
	nd.sendDone, nd.recvDone = false, false
	if every := m.sampleEvery(); step%every == 0 {
		nd.log = append(nd.log, flight.Event{At: nd.loc.Now(), Kind: flight.KPut,
			A: int64(nd.next), B: int64(c), C: int64(val)})
	}
	f := nd.net.Start(nd.route, m.cfg.ChunkBytes, m.cfg.SrcCap)
	f.Done().OnComplete(func(any) {
		if m.chunks != nil {
			m.chunks.Add(1)
			m.moved.Add(m.cfg.ChunkBytes)
		}
		nd.loc.Send(nd.nextLoc, nd.delay, m.deliverF,
			&torusDelivery{to: nd.next, step: step, chunk: c, val: val})
		nd.sendDone = true
		nd.maybeAdvance()
	})
}

func (m *TorusWorld) sampleEvery() int {
	if m.cfg.SampleEvery > 0 {
		return m.cfg.SampleEvery
	}
	return 64
}

// onRecv runs on the receiving node's locale: apply the chunk if the node
// is at the message's step, otherwise buffer it (the sender may run up to
// a ring circumference ahead).
func (nd *torusNode) onRecv(d *torusDelivery) {
	if d.step != nd.step || nd.recvDone {
		if d.step <= nd.step {
			panic(fmt.Sprintf("mpi: torus node %d got duplicate step %d at step %d", nd.id, d.step, nd.step))
		}
		nd.inbox = append(nd.inbox, d)
		return
	}
	nd.apply(d)
	nd.maybeAdvance()
}

// apply merges one received chunk: wrapping add during reduce-scatter,
// overwrite during allgather.
func (nd *torusNode) apply(d *torusDelivery) {
	if nd.step < len(nd.m.nodes)-1 {
		nd.chunks[d.chunk] += d.val
	} else {
		nd.chunks[d.chunk] = d.val
	}
	nd.recvDone = true
}

// maybeAdvance moves to the next step once the node's own transfer finished
// and the predecessor's chunk arrived.
func (nd *torusNode) maybeAdvance() {
	if !nd.sendDone || !nd.recvDone {
		return
	}
	nd.step++
	nd.beginStep()
	if nd.step >= nd.m.total {
		return
	}
	for i, d := range nd.inbox {
		if d.step == nd.step {
			nd.inbox = append(nd.inbox[:i], nd.inbox[i+1:]...)
			nd.apply(d)
			// The new transfer just started and takes positive virtual
			// time, so sendDone is false: no further advance from here.
			return
		}
	}
}

// Run executes the allreduce to completion and verifies the reduction.
func (m *TorusWorld) Run() (TorusResult, error) {
	for _, nd := range m.nodes {
		nd := nd
		nd.loc.At(0, nd.beginStep)
	}
	end := m.fab.Run()
	res := TorusResult{
		Nodes: len(m.nodes), Shards: m.cfg.Shards, End: end,
		Events: m.fab.Events(), Steps: m.total,
	}
	if se, ok := m.fab.(*sim.ShardedEngine); ok {
		res.Windows = se.Windows()
	}
	// Every node must hold the identical fully reduced vector.
	want := make([]uint64, len(m.nodes))
	for c := range want {
		for id := range m.nodes {
			want[c] += torusChunkInit(id, c)
		}
		res.Checksum += want[c]
	}
	for _, nd := range m.nodes {
		if !nd.finished {
			return res, fmt.Errorf("mpi: torus node %d stalled at step %d/%d", nd.id, nd.step, m.total)
		}
		for c, v := range nd.chunks {
			if v != want[c] {
				return res, fmt.Errorf("mpi: torus node %d chunk %d = %#x, want %#x", nd.id, c, v, want[c])
			}
		}
	}
	return res, nil
}

// FlightDump merges every node's local samples into one deterministic
// flight dump. Nodes log into private slices during the (possibly parallel)
// run; here the events are ordered by their full content key and re-recorded
// sequentially, so the bytes are identical across engines, shard counts and
// OS schedules — the artifact the determinism gate hashes.
func (m *TorusWorld) FlightDump() []byte {
	type tagged struct {
		actor string
		ev    flight.Event
	}
	var all []tagged
	perActor := 0
	for _, nd := range m.nodes {
		if len(nd.log) > perActor {
			perActor = len(nd.log)
		}
		name := fmt.Sprintf("node%04d", nd.id)
		for _, ev := range nd.log {
			all = append(all, tagged{actor: name, ev: ev})
		}
	}
	sortTagged := func(i, j int) bool {
		a, b := all[i], all[j]
		if a.ev.At != b.ev.At {
			return a.ev.At < b.ev.At
		}
		if a.actor != b.actor {
			return a.actor < b.actor
		}
		if a.ev.Kind != b.ev.Kind {
			return a.ev.Kind < b.ev.Kind
		}
		if a.ev.A != b.ev.A {
			return a.ev.A < b.ev.A
		}
		if a.ev.B != b.ev.B {
			return a.ev.B < b.ev.B
		}
		if a.ev.C != b.ev.C {
			return a.ev.C < b.ev.C
		}
		return a.ev.D < b.ev.D
	}
	sort.SliceStable(all, sortTagged)
	rec := flight.New(perActor + 1) // never evict: eviction would reintroduce order sensitivity
	for _, t := range all {
		rec.Actor(t.actor).Record(t.ev.At, t.ev.Kind, t.ev.A, t.ev.B, t.ev.C, t.ev.D)
	}
	var buf bytes.Buffer
	if err := rec.Snapshot("mpi: torus end of run").WriteJSON(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
