package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"scimpich/internal/datatype"
)

// Op is a reduction operation over basic datatypes (MPI_Op).
type Op int

// The predefined reduction operations.
const (
	OpSum Op = iota
	OpProd
	OpMax
	OpMin
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "MPI_SUM"
	case OpProd:
		return "MPI_PROD"
	case OpMax:
		return "MPI_MAX"
	case OpMin:
		return "MPI_MIN"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// CombineOp applies acc[i] = op(acc[i], in[i]) elementwise for count
// elements of the basic datatype dt (exported for the one-sided
// accumulate handler).
func CombineOp(op Op, dt *datatype.Type, acc, in []byte, count int) {
	combine(op, dt, acc, in, count)
}

// combine applies acc[i] = op(acc[i], in[i]) elementwise for count elements
// of the basic datatype dt.
func combine(op Op, dt *datatype.Type, acc, in []byte, count int) {
	switch dt {
	case datatype.Float64:
		apply(op, acc, in, count, 8,
			func(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) },
			func(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) })
	case datatype.Float32:
		apply(op, acc, in, count, 4,
			func(b []byte) float32 { return math.Float32frombits(binary.LittleEndian.Uint32(b)) },
			func(b []byte, v float32) { binary.LittleEndian.PutUint32(b, math.Float32bits(v)) })
	case datatype.Int32:
		apply(op, acc, in, count, 4,
			func(b []byte) int32 { return int32(binary.LittleEndian.Uint32(b)) },
			func(b []byte, v int32) { binary.LittleEndian.PutUint32(b, uint32(v)) })
	case datatype.Int64:
		apply(op, acc, in, count, 8,
			func(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) },
			func(b []byte, v int64) { binary.LittleEndian.PutUint64(b, uint64(v)) })
	case datatype.Int16:
		apply(op, acc, in, count, 2,
			func(b []byte) int16 { return int16(binary.LittleEndian.Uint16(b)) },
			func(b []byte, v int16) { binary.LittleEndian.PutUint16(b, uint16(v)) })
	case datatype.Byte, datatype.Char:
		apply(op, acc, in, count, 1,
			func(b []byte) uint8 { return b[0] },
			func(b []byte, v uint8) { b[0] = v })
	default:
		panic(fmt.Sprintf("mpi: reduction on unsupported datatype %s", dt))
	}
}

// number covers the element types reductions operate on.
type number interface {
	~int16 | ~int32 | ~int64 | ~uint8 | ~float32 | ~float64
}

func apply[T number](op Op, acc, in []byte, count int, width int, get func([]byte) T, put func([]byte, T)) {
	for i := 0; i < count; i++ {
		a := get(acc[i*width:])
		b := get(in[i*width:])
		var r T
		switch op {
		case OpSum:
			r = a + b
		case OpProd:
			r = a * b
		case OpMax:
			r = a
			if b > a {
				r = b
			}
		case OpMin:
			r = a
			if b < a {
				r = b
			}
		default:
			panic(fmt.Sprintf("mpi: unknown op %v", op))
		}
		put(acc[i*width:], r)
	}
}

// Float64Bytes views a float64 slice as the little-endian byte encoding
// used by the runtime's untyped buffers.
func Float64Bytes(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
	}
	return b
}

// BytesFloat64 decodes Float64Bytes.
func BytesFloat64(b []byte) []float64 {
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return v
}

// Int32Bytes encodes an int32 slice.
func Int32Bytes(v []int32) []byte {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(x))
	}
	return b
}

// BytesInt32 decodes Int32Bytes.
func BytesInt32(b []byte) []int32 {
	v := make([]int32, len(b)/4)
	for i := range v {
		v[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return v
}
