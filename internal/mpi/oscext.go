package mpi

import (
	"time"

	"scimpich/internal/sim"
	"scimpich/internal/smi"
)

// Extension surface for one-sided communication (the osc package): a
// remote-handler RPC (the paper's "internal control messages in conjunction
// with a remote interrupt ... to invoke a remote handler") plus access to
// the per-pair staging areas used to move emulated-put/get data with the
// standard transfer mechanisms.

// SetOSCHandler registers the handler that services one-sided requests
// arriving at this rank. It runs on the rank's device process; src is the
// requesting rank and the returned value travels back to the caller.
func (c *Comm) SetOSCHandler(h func(p *sim.Proc, src int, req any) any) {
	dev := c.rk.dev
	dev.oscHandler = func(p *sim.Proc, env *envelope) {
		reply := h(p, env.src, env.osc)
		if env.reply == nil {
			return // fire-and-forget notification
		}
		c.w.ring(p, c.rk.id, env.src, &envelope{
			kind: envOSCReply, src: c.rk.id, dst: env.src,
			osc: reply, reply: env.reply,
		}, false)
	}
}

// OSCCall invokes the remote handler at target (a WORLD rank) with req and
// blocks until its reply arrives. interrupt selects the remote-interrupt
// delivery path (required when the target may not be polling — the
// passive-target case).
func (c *Comm) OSCCall(target int, req any, interrupt bool) any {
	reply := sim.NewChan(1)
	c.countOSCDelivery(interrupt)
	c.w.ring(c.p, c.rk.id, target, &envelope{
		kind: envOSC, src: c.rk.id, dst: target,
		osc: req, reply: reply,
	}, interrupt)
	env := c.p.Recv(reply).(*envelope)
	return env.osc
}

// OSCCallTimeout is OSCCall with a watchdog: it returns (reply, true) on
// success, or (nil, false) if no reply arrives within timeout (virtual
// time) — the target's node having crashed, for instance. A timeout of 0
// waits forever (always returning ok).
func (c *Comm) OSCCallTimeout(target int, req any, interrupt bool, timeout time.Duration) (any, bool) {
	if timeout <= 0 {
		return c.OSCCall(target, req, interrupt), true
	}
	reply := sim.NewChan(1)
	c.countOSCDelivery(interrupt)
	c.w.ring(c.p, c.rk.id, target, &envelope{
		kind: envOSC, src: c.rk.id, dst: target,
		osc: req, reply: reply,
	}, interrupt)
	v, ok := c.p.RecvTimeout(reply, timeout)
	if !ok {
		c.rk.dev.stats.sendTimeouts.Add(1)
		return nil, false
	}
	return v.(*envelope).osc, true
}

// OSCNotify invokes the remote handler without waiting for a reply.
func (c *Comm) OSCNotify(target int, req any, interrupt bool) {
	c.countOSCDelivery(interrupt)
	c.w.ring(c.p, c.rk.id, target, &envelope{
		kind: envOSC, src: c.rk.id, dst: target,
		osc: req, reply: nil,
	}, interrupt)
}

// countOSCDelivery records which delivery path a one-sided request used
// (mpi.osc.calls{delivery=interrupt|poll}): interrupt delivery is required
// whenever the target may not be polling — including shared-window targets
// whose direct view has degraded mid-epoch.
func (c *Comm) countOSCDelivery(interrupt bool) {
	if interrupt {
		c.w.met.oscCallsInterrupt.Inc()
		return
	}
	c.w.met.oscCallsPoll.Inc()
}

// OSCStage returns the calling rank's sender-side view of the one-sided
// staging area toward target (a WORLD rank), with its offset and size, and
// the mutex serializing its use.
func (c *Comm) OSCStage(target int) (mem smi.Mem, off, size int64, lock *sim.Mutex) {
	out := c.rk.out[target]
	return out.mem, c.w.oscOff(), c.w.protocol().OSCBuf, out.oscLock
}

// OSCStageLocal returns this rank's local (receive-side) view of the
// staging area written by origin src. The remote handler drains emulated
// puts from here and deposits emulated-get data into it.
func (c *Comm) OSCStageLocal(src int) (mem smi.Mem, off int64) {
	return c.rk.ports[src].mem, c.w.oscOff()
}
