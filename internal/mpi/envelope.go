package mpi

import (
	"scimpich/internal/bufpool"
	"scimpich/internal/datatype"
	"scimpich/internal/sim"
)

// envKind enumerates the control packets of the device protocol.
type envKind int

const (
	// envShort carries the whole payload inline in the control packet.
	envShort envKind = iota
	// envEager announces data deposited in an eager slot.
	envEager
	// envEagerAck returns an eager slot credit to the sender.
	envEagerAck
	// envRdvReq asks the receiver to set up a rendezvous transfer.
	envRdvReq
	// envRdvCTS grants the sender the rendezvous buffer (clear-to-send).
	envRdvCTS
	// envRdvData announces one rendezvous chunk delivered to a slot.
	envRdvData
	// envRdvAck confirms a chunk has been drained (slot reusable).
	envRdvAck
	// envRdvCancel aborts an in-flight rendezvous after the sender gives
	// up (permanent deposit failure): the receiver frees its rendezvous
	// state and fails the posted receive instead of waiting for the
	// watchdog.
	envRdvCancel
	// envLocalPost is a local posting from the rank's own process to its
	// device (posted receive); it never crosses the wire.
	envLocalPost
	// envLocalProbe queries the unexpected queue (MPI_Probe/Iprobe).
	envLocalProbe
	// envOSC carries a one-sided-communication handler request (the
	// "emulation" path for windows in private memory).
	envOSC
	// envOSCReply answers an envOSC request.
	envOSCReply
)

func (k envKind) String() string {
	switch k {
	case envShort:
		return "short"
	case envEager:
		return "eager"
	case envEagerAck:
		return "eager-ack"
	case envRdvReq:
		return "rdv-req"
	case envRdvCTS:
		return "rdv-cts"
	case envRdvData:
		return "rdv-data"
	case envRdvAck:
		return "rdv-ack"
	case envRdvCancel:
		return "rdv-cancel"
	case envLocalPost:
		return "local-post"
	case envOSC:
		return "osc"
	case envOSCReply:
		return "osc-reply"
	default:
		return "unknown"
	}
}

// envelope is one control packet. The payload of short messages rides in
// the envelope (as it does in a real control packet); everything else
// refers to memory the sender has already written remotely.
type envelope struct {
	kind     envKind
	src, dst int
	tag      int
	ctx      int // communicator context
	bytes    int64
	// seq is a per-(sender, receiver) sequence number stamped on
	// message-bearing envelopes so the receiving device can drop injected
	// duplicates (exactly-once delivery under retransmission faults).
	// 0 means unsequenced (control traffic).
	seq int64
	// type-signature hash of the send datatype (0 when byte-only: the
	// wildcard raw-buffer idiom).
	sig uint64

	// short protocol. payloadBuf is the pooled buffer backing payload (nil
	// for unpooled payloads); the receiving device recycles it after the
	// final read. Injected duplicate envelopes share the pointer, but the
	// sequence check drops them before the payload is touched.
	payload    []byte
	payloadBuf *bufpool.Buf

	// eager protocol
	slot int

	// rendezvous protocol
	reqID     int64
	chunk     int   // chunk index (envRdvData/envRdvAck)
	chunkLen  int64 // bytes in this chunk
	fingerprt uint64
	reply     *sim.Chan // sender-side channel for CTS/ACK delivery

	// local post
	post  *recvReq
	probe *probeReq

	// one-sided communication
	osc any
}

// probeReq is a pending probe: immediate probes answer from the current
// unexpected queue (nil when empty); blocking probes wait for the first
// matching arrival.
type probeReq struct {
	ctx, src, tag int
	immediate     bool
	done          *sim.Future
}

// matches mirrors recvReq matching.
func (r *probeReq) matches(src, tag, ctx int) bool {
	if r.ctx != ctx {
		return false
	}
	if r.src != AnySource && r.src != src {
		return false
	}
	if r.tag != AnyTag && r.tag != tag {
		return false
	}
	return true
}

// recvReq is a posted receive waiting for a match.
type recvReq struct {
	ctx, src, tag int // src/tag may be wildcards
	buf           []byte
	count         int
	dt            *datatype.Type
	done          *sim.Future // completes with *Status
}

// Status describes a completed receive.
type Status struct {
	// Source is the sending rank.
	Source int
	// Tag is the matched tag.
	Tag int
	// Bytes is the number of payload bytes received.
	Bytes int64
}

// AnySource and AnyTag are the receive wildcards.
const (
	AnySource = -1
	AnyTag    = -1
)

// matches reports whether an incoming (src, tag, ctx) matches the posted
// request.
func (r *recvReq) matches(src, tag, ctx int) bool {
	if r.ctx != ctx {
		return false
	}
	if r.src != AnySource && r.src != src {
		return false
	}
	if r.tag != AnyTag && r.tag != tag {
		return false
	}
	return true
}
