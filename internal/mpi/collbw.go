package mpi

import "scimpich/internal/datatype"

// Bandwidth-optimal large-message allreduce algorithms, replacing the
// latency-doubling Reduce + Bcast composition: recursive doubling (log P
// full-vector exchanges; best when latency dominates) and the ring
// algorithm (reduce-scatter followed by ring allgather: every rank moves
// ~2n bytes regardless of P, the bandwidth optimum for large vectors).
// Both run on the contiguous base-typed reduction views of collview.go,
// so they serve derived datatypes unchanged.

// Tags of the bandwidth algorithms.
const (
	tagARecDbl = 13 << 20 // + round; the rem-fold and final return use fixed offsets below
	tagARing   = 14 << 20 // + step
)

const (
	tagARecDblFold  = tagARecDbl + (1 << 19)
	tagARecDblFinal = tagARecDbl + (1 << 19) + 1
)

// allreduceRecDbl reduces acc (elems elements of base) across all ranks
// with recursive doubling. Non-power-of-two sizes fold the first rem pairs
// onto their odd member first and fan the result back out at the end
// (MPICH's rem-handling). c must be the collective view.
func (c *Comm) allreduceRecDbl(acc []byte, elems int, base *datatype.Type, rop Op) error {
	size := c.Size()
	me := c.Rank()
	pow2 := 1
	for pow2*2 <= size {
		pow2 *= 2
	}
	rem := size - pow2
	tmp := make([]byte, len(acc))
	newRank := me - rem
	if me < 2*rem {
		if me%2 == 0 {
			// Fold onto the odd partner, then idle until the result returns.
			if err := c.send(acc, elems, base, me+1, tagARecDblFold, c.ctx); err != nil {
				return err
			}
			return c.recvColl(acc, elems, base, me+1, tagARecDblFinal)
		}
		if err := c.recvColl(tmp, elems, base, me-1, tagARecDblFold); err != nil {
			return err
		}
		// The partner is the lower rank: acc = partner op mine.
		c.combineColl(rop, base, tmp, acc, elems)
		copy(acc, tmp)
		newRank = me / 2
	}
	for round, mask := 0, 1; mask < pow2; round, mask = round+1, mask<<1 {
		partnerNew := newRank ^ mask
		partner := partnerNew + rem
		if partnerNew < rem {
			partner = partnerNew*2 + 1
		}
		if err := c.sendrecvColl(acc, elems, base, partner, tagARecDbl+round,
			tmp, elems, base, partner, tagARecDbl+round); err != nil {
			return err
		}
		// Fold in rank order so non-commutative combiners stay well defined.
		if partner < me {
			c.combineColl(rop, base, tmp, acc, elems)
			copy(acc, tmp)
		} else {
			c.combineColl(rop, base, acc, tmp, elems)
		}
	}
	if me < 2*rem && me%2 == 1 {
		return c.send(acc, elems, base, me-1, tagARecDblFinal, c.ctx)
	}
	return nil
}

// ringLink exchanges one block per ring step: out goes to the right
// neighbour, the left neighbour's block lands in in. finish drains any
// trailing protocol traffic before the collective returns.
type ringLink interface {
	xfer(step int, out, in []byte) error
	finish() error
}

// p2pRingLink runs the ring over the point-to-point protocols.
type p2pRingLink struct {
	cc          *Comm
	right, left int
}

func (l *p2pRingLink) xfer(t int, out, in []byte) error {
	return l.cc.sendrecvColl(out, len(out), datatype.Byte, l.right, tagARing+t,
		in, len(in), datatype.Byte, l.left, tagARing+t)
}

func (l *p2pRingLink) finish() error { return nil }

// ringBlock returns the byte range of partition block i of elems elements
// (the even spread all members compute identically).
func ringBlock(acc []byte, elems, size, i int, es int64) []byte {
	lo := int64(elems*i/size) * es
	hi := int64(elems*(i+1)/size) * es
	return acc[lo:hi]
}

// ringSendBlock returns the block index rank me forwards to its right
// neighbour at global step s of the 2(size-1)-step ring allreduce: the
// reduce-scatter rotation for the first size-1 steps, then the allgather
// rotation. It is the single schedule shared by the process-based
// collective engine (allreduceRing) and the torus collective runtime
// (TorusWorld); the block received at step s is always the sent block's
// left neighbour, (ringSendBlock(me,s,size)-1+size) % size.
func ringSendBlock(me, s, size int) int {
	if s < size-1 {
		return ((me-s)%size + size) % size
	}
	return ((me+1-(s-(size-1)))%size + 2*size) % size
}

// allreduceRing reduces acc across all ranks with reduce-scatter followed
// by ring allgather. oneSided selects the window-deposit block exchange
// (the one-sided family); otherwise blocks travel point-to-point. c must
// be the collective view.
func (c *Comm) allreduceRing(acc []byte, elems int, base *datatype.Type, rop Op, oneSided bool) error {
	size := c.Size()
	me := c.Rank()
	es := base.Size()
	right := (me + 1) % size
	left := (me - 1 + size) % size
	steps := 2 * (size - 1)
	var link ringLink = &p2pRingLink{cc: c, right: right, left: left}
	if oneSided {
		link = &osRingLink{cc: c, right: right, left: left, steps: steps}
	}
	maxBlock := 0
	for i := 0; i < size; i++ {
		if n := len(ringBlock(acc, elems, size, i, es)); n > maxBlock {
			maxBlock = n
		}
	}
	tmp := make([]byte, maxBlock)
	// Reduce-scatter for the first size-1 steps (after which rank me holds
	// the complete reduction of block (me+1) mod size), then ring allgather
	// of the completed blocks — both driven by the shared rotation.
	for t := 0; t < steps; t++ {
		sendIdx := ringSendBlock(me, t, size)
		recvIdx := (sendIdx - 1 + size) % size
		if t < size-1 {
			mine := ringBlock(acc, elems, size, recvIdx, es)
			in := tmp[:len(mine)]
			if err := link.xfer(t, ringBlock(acc, elems, size, sendIdx, es), in); err != nil {
				return err
			}
			c.combineColl(rop, base, mine, in, len(in)/int(es))
			continue
		}
		if err := link.xfer(t, ringBlock(acc, elems, size, sendIdx, es),
			ringBlock(acc, elems, size, recvIdx, es)); err != nil {
			return err
		}
	}
	return link.finish()
}
