package mpi

import (
	"strings"
	"testing"

	"scimpich/internal/datatype"
	"scimpich/internal/trace"
)

func TestTracerRecordsProtocolTimeline(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	tr := trace.New(0)
	cfg.Tracer = tr
	src := fill(256 << 10)
	Run(cfg, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(src, len(src), datatype.Byte, 1, 3)
		case 1:
			dst := make([]byte, len(src))
			c.Recv(dst, len(dst), datatype.Byte, 0, 3)
		}
	})
	if tr.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	sends := tr.Filter("send")
	if len(sends) == 0 || !strings.Contains(sends[0].Detail, "262144 bytes") {
		t.Errorf("send events = %+v", sends)
	}
	recvs := tr.Filter("recv")
	if len(recvs) == 0 || !strings.Contains(recvs[0].Detail, "rdv-req") {
		t.Errorf("recv events = %+v (want rendezvous match)", recvs)
	}
	// A 256 kiB transfer in 64 kiB chunks: four chunk events.
	chunks := tr.Filter("rdv")
	if len(chunks) != 4 {
		t.Errorf("chunk events = %d, want 4", len(chunks))
	}
	// Events must be time-ordered.
	for i := 1; i < tr.Len(); i++ {
		if tr.Events()[i].At < tr.Events()[i-1].At {
			t.Fatal("trace not time-ordered")
		}
	}
}

func TestTracerOffByDefault(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	if cfg.Tracer != nil {
		t.Fatal("tracing should default to off")
	}
	// A run with the nil tracer must work (hooks are nil-safe).
	Run(cfg, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send([]byte{1}, 1, datatype.Byte, 1, 0)
		} else {
			c.Recv(make([]byte, 1), 1, datatype.Byte, 0, 0)
		}
	})
}
