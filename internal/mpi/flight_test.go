package mpi

import (
	"testing"

	"scimpich/internal/datatype"
	"scimpich/internal/obs/flight"
)

// TestFlightRecordsSendRecv checks the point-to-point wiring: a send and
// its matching receive leave typed events on the respective rank rings,
// with the documented match-key payloads, and the topology meta ring names
// every rank's node.
func TestFlightRecordsSendRecv(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	rec := flight.New(64)
	cfg.Flight = rec
	const tag, bytes = 7, 128
	Run(cfg, func(c *Comm) {
		buf := make([]byte, bytes)
		if c.Rank() == 0 {
			c.Send(buf, bytes, datatype.Byte, 1, tag)
		} else {
			c.Recv(buf, bytes, datatype.Byte, 0, tag)
		}
	})

	find := func(actor string, k flight.Kind) *flight.Event {
		for _, e := range rec.Actor(actor).Events() {
			if e.Kind == k {
				return &e
			}
		}
		return nil
	}
	send := find("rank0", flight.KSendPost)
	if send == nil {
		t.Fatal("rank0 recorded no KSendPost")
	}
	if send.A != 1 || send.B != tag || send.C != bytes {
		t.Errorf("KSendPost payload = %+v, want dst 1, tag %d, %dB", send, tag, bytes)
	}
	if post := find("rank1", flight.KRecvPost); post == nil {
		t.Error("rank1 recorded no KRecvPost")
	}
	match := find("rank1", flight.KRecvMatch)
	if match == nil {
		t.Fatal("rank1 recorded no KRecvMatch")
	}
	if match.A != 0 || match.B != tag || match.C != bytes {
		t.Errorf("KRecvMatch payload = %+v, want src 0, tag %d, %dB", match, tag, bytes)
	}
	if send.Seq >= match.Seq {
		t.Errorf("send seq %d not before match seq %d", send.Seq, match.Seq)
	}

	topo := rec.Actor("topology").Events()
	if len(topo) != 2 {
		t.Fatalf("topology ring has %d events, want one KRankNode per rank", len(topo))
	}
	for r, e := range topo {
		if e.Kind != flight.KRankNode || e.A != int64(r) {
			t.Errorf("topology[%d] = %+v, want KRankNode for rank %d", r, e, r)
		}
	}
	if rec.Dumped() {
		t.Errorf("healthy run dumped: %s", rec.Reason())
	}
}
