package mpi

import (
	"bytes"
	"testing"
	"time"

	"scimpich/internal/datatype"
)

func TestPersistentHaloLoop(t *testing.T) {
	const iters = 12
	const size = 8 << 10
	Run(DefaultConfig(2, 1), func(c *Comm) {
		peer := 1 - c.Rank()
		out := make([]byte, size)
		in := make([]byte, size)
		send := c.SendInit(out, size, datatype.Byte, peer, 7)
		recv := c.RecvInit(in, size, datatype.Byte, peer, 7)
		for i := 0; i < iters; i++ {
			for j := range out {
				out[j] = byte(c.Rank()*50 + i)
			}
			StartAll([]*PersistentRequest{recv, send})
			WaitAllPersistent([]*PersistentRequest{recv, send})
			want := byte(peer*50 + i)
			if in[0] != want || in[size-1] != want {
				t.Fatalf("iteration %d: halo = %d, want %d", i, in[0], want)
			}
		}
		if send.Active() || recv.Active() {
			t.Error("requests still active after Wait")
		}
	})
}

func TestPersistentDoubleStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	Run(DefaultConfig(2, 1), func(c *Comm) {
		if c.Rank() == 0 {
			pr := c.RecvInit(make([]byte, 4), 4, datatype.Byte, 1, 0)
			pr.Start()
			pr.Start()
		} else {
			c.Send(make([]byte, 4), 4, datatype.Byte, 0, 0)
			c.Send(make([]byte, 4), 4, datatype.Byte, 0, 0)
		}
	})
}

func TestSsendWaitsForMatch(t *testing.T) {
	// The synchronous send must not complete before the receive is posted.
	runPair(t, func(c *Comm) {
		switch c.Rank() {
		case 0:
			start := c.WtimeDuration()
			c.Ssend([]byte{42}, 1, datatype.Byte, 1, 0)
			if c.WtimeDuration()-start < 400*time.Microsecond {
				t.Errorf("Ssend completed in %v, before the receive was posted", c.WtimeDuration()-start)
			}
		case 1:
			c.Proc().Sleep(500 * time.Microsecond)
			buf := make([]byte, 1)
			c.Recv(buf, 1, datatype.Byte, 0, 0)
			if buf[0] != 42 {
				t.Error("Ssend data corrupted")
			}
		}
	})
}

func TestSsendZeroBytes(t *testing.T) {
	runPair(t, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Ssend(nil, 0, datatype.Byte, 1, 0)
		case 1:
			c.Proc().Sleep(100 * time.Microsecond)
			c.Recv(nil, 0, datatype.Byte, 0, 0)
		}
	})
}

func TestAlltoallv(t *testing.T) {
	const procs = 4
	Run(DefaultConfig(procs, 1), func(c *Comm) {
		me := c.Rank()
		// Rank r sends (p+1) bytes of value r*16+p to rank p.
		sendCounts := make([]int, procs)
		sdispls := make([]int, procs)
		total := 0
		for p := 0; p < procs; p++ {
			sendCounts[p] = p + 1
			sdispls[p] = total
			total += p + 1
		}
		send := make([]byte, total)
		for p := 0; p < procs; p++ {
			for i := 0; i < sendCounts[p]; i++ {
				send[sdispls[p]+i] = byte(me*16 + p)
			}
		}
		// Everyone receives (me+1) bytes from each peer.
		recvCounts := make([]int, procs)
		rdispls := make([]int, procs)
		rtotal := 0
		for p := 0; p < procs; p++ {
			recvCounts[p] = me + 1
			rdispls[p] = rtotal
			rtotal += me + 1
		}
		recv := make([]byte, rtotal)
		c.Alltoallv(send, sendCounts, sdispls, datatype.Byte, recv, recvCounts, rdispls)
		for p := 0; p < procs; p++ {
			seg := recv[rdispls[p] : rdispls[p]+recvCounts[p]]
			want := bytes.Repeat([]byte{byte(p*16 + me)}, me+1)
			if !bytes.Equal(seg, want) {
				t.Fatalf("rank %d from %d: %v, want %v", me, p, seg, want)
			}
		}
	})
}
