package mpi

import (
	"bytes"
	"testing"
	"time"

	"scimpich/internal/datatype"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	Run(DefaultConfig(1, 1), func(c *Comm) {
		ty := datatype.Vector(8, 2, 4, datatype.Float64).Commit()
		user := fill(int(ty.Extent()) + 64)
		out := make([]byte, PackSize(1, ty)+PackSize(4, datatype.Int32))
		var pos int64
		c.Pack(user, 1, ty, out, &pos)
		ints := Int32Bytes([]int32{1, 2, 3, 4})
		c.Pack(ints, 4, datatype.Int32, out, &pos)
		if pos != int64(len(out)) {
			t.Fatalf("position = %d, want %d", pos, len(out))
		}

		back := make([]byte, len(user))
		gotInts := make([]byte, 16)
		pos = 0
		c.Unpack(out, &pos, back, 1, ty)
		c.Unpack(out, &pos, gotInts, 4, datatype.Int32)
		if !bytes.Equal(gotInts, ints) {
			t.Error("int segment corrupted")
		}
		for _, b := range ty.TypeMap() {
			if !bytes.Equal(back[b.Off:b.Off+b.Len], user[b.Off:b.Off+b.Len]) {
				t.Fatalf("typed segment corrupted at %d", b.Off)
			}
		}
	})
}

func TestPackedBufferInteroperatesWithByteSend(t *testing.T) {
	// Pack on the sender, ship as bytes, unpack on the receiver — the MPI
	// packed-data interop guarantee.
	ty := datatype.Indexed([]int{2, 3}, []int{0, 4}, datatype.Int32).Commit()
	user := fill(int(ty.Extent()) + 64)
	runPair(t, func(c *Comm) {
		switch c.Rank() {
		case 0:
			out := make([]byte, PackSize(2, ty))
			var pos int64
			c.Pack(user, 2, ty, out, &pos)
			c.Send(out, int(pos), datatype.Byte, 1, 0)
		case 1:
			in := make([]byte, PackSize(2, ty))
			c.Recv(in, len(in), datatype.Byte, 0, 0)
			back := make([]byte, len(user))
			var pos int64
			c.Unpack(in, &pos, back, 2, ty)
			for i := 0; i < 2; i++ {
				base := int64(i) * ty.Extent()
				for _, b := range ty.TypeMap() {
					if !bytes.Equal(back[base+b.Off:base+b.Off+b.Len], user[base+b.Off:base+b.Off+b.Len]) {
						t.Fatalf("instance %d block at %d corrupted", i, b.Off)
					}
				}
			}
		}
	})
}

func TestPackOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overflowing Pack did not panic")
		}
	}()
	Run(DefaultConfig(1, 1), func(c *Comm) {
		out := make([]byte, 4)
		var pos int64
		c.Pack(make([]byte, 64), 8, datatype.Float64, out, &pos)
	})
}

func TestProbeBlockingAndStatus(t *testing.T) {
	runPair(t, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Proc().Sleep(100 * time.Microsecond)
			c.Send(fill(500), 500, datatype.Byte, 1, 42)
		case 1:
			start := c.WtimeDuration()
			st := c.Probe(AnySource, AnyTag)
			if c.WtimeDuration()-start < 100*time.Microsecond {
				t.Error("probe returned before any message was sent")
			}
			if st.Source != 0 || st.Tag != 42 || st.Bytes != 500 {
				t.Errorf("probe status = %+v", st)
			}
			// The message is still there: receive it normally.
			buf := make([]byte, st.Bytes)
			c.Recv(buf, int(st.Bytes), datatype.Byte, st.Source, st.Tag)
			if !bytes.Equal(buf, fill(500)) {
				t.Error("data corrupted after probe")
			}
		}
	})
}

func TestIprobe(t *testing.T) {
	runPair(t, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send([]byte{1}, 1, datatype.Byte, 1, 5)
			c.Send(nil, 0, datatype.Byte, 1, 6) // "sent" signal
		case 1:
			if _, ok := c.Iprobe(0, 99); ok {
				t.Error("Iprobe matched a nonexistent message")
			}
			c.Recv(nil, 0, datatype.Byte, 0, 6) // wait for the signal
			st, ok := c.Iprobe(0, 5)
			if !ok || st.Bytes != 1 {
				t.Errorf("Iprobe missed the queued message: %v %v", st, ok)
			}
			buf := make([]byte, 1)
			c.Recv(buf, 1, datatype.Byte, 0, 5)
		}
	})
}

func TestProbeThenWildcardRecvConsistent(t *testing.T) {
	// Probe + Recv(st.Source, st.Tag) must retrieve the probed message
	// even with multiple candidates queued.
	runPair(t, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send([]byte{10}, 1, datatype.Byte, 1, 1)
			c.Send([]byte{20}, 1, datatype.Byte, 1, 2)
		case 1:
			st := c.Probe(0, AnyTag)
			buf := make([]byte, 1)
			got := c.Recv(buf, 1, datatype.Byte, st.Source, st.Tag)
			if got.Tag != st.Tag {
				t.Errorf("received tag %d after probing tag %d", got.Tag, st.Tag)
			}
			// Non-overtaking: the first probe must see tag 1.
			if st.Tag != 1 || buf[0] != 10 {
				t.Errorf("probe saw tag %d value %d, want the first message", st.Tag, buf[0])
			}
			c.Recv(buf, 1, datatype.Byte, 0, 2)
		}
	})
}
