package mpi

import "fmt"

// ProtocolError reports an out-of-protocol control packet: the sender
// waited for one control kind and received another (e.g. an injected
// duplicate CTS where a chunk ack was due). It degrades the operation
// instead of crashing the rank.
type ProtocolError struct {
	Want, Got string // envelope kinds
	From, To  int    // the pair, sender first
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("mpi: protocol error on pair %d->%d: expected %s, got %s",
		e.From, e.To, e.Want, e.Got)
}

// CancelledError completes a posted receive whose rendezvous the sender
// cancelled after a permanent deposit failure (envRdvCancel). The
// sender's own Send call returns the underlying transfer error.
type CancelledError struct {
	Sender int
	ReqID  int64
}

func (e *CancelledError) Error() string {
	return fmt.Sprintf("mpi: rendezvous %d cancelled by sender %d", e.ReqID, e.Sender)
}

// ArgumentError reports invalid arguments to a collective call (a
// non-reducible datatype passed to a reduction, mismatched counts/displs
// lengths, an out-of-range root). The checked collective variants return
// it; the panicking wrappers panic with it.
type ArgumentError struct {
	Call   string // the API entry point, e.g. "Reduce"
	Reason string
}

func (e *ArgumentError) Error() string {
	return fmt.Sprintf("mpi: %s: %s", e.Call, e.Reason)
}

// argErrf builds an *ArgumentError with a formatted reason.
func argErrf(call, format string, args ...any) *ArgumentError {
	return &ArgumentError{Call: call, Reason: fmt.Sprintf(format, args...)}
}
