package mpi

import "fmt"

// ProtocolError reports an out-of-protocol control packet: the sender
// waited for one control kind and received another (e.g. an injected
// duplicate CTS where a chunk ack was due). It degrades the operation
// instead of crashing the rank.
type ProtocolError struct {
	Want, Got string // envelope kinds
	From, To  int    // the pair, sender first
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("mpi: protocol error on pair %d->%d: expected %s, got %s",
		e.From, e.To, e.Want, e.Got)
}

// CancelledError completes a posted receive whose rendezvous the sender
// cancelled after a permanent deposit failure (envRdvCancel). The
// sender's own Send call returns the underlying transfer error.
type CancelledError struct {
	Sender int
	ReqID  int64
}

func (e *CancelledError) Error() string {
	return fmt.Sprintf("mpi: rendezvous %d cancelled by sender %d", e.ReqID, e.Sender)
}
