package mpi

import "testing"

func TestPlacementByNode(t *testing.T) {
	// 8 ranks on 4 nodes (2 per node), nodes split over 2 shards.
	nodeOf := []int{0, 0, 1, 1, 2, 2, 3, 3}
	nodeShard := []int{0, 0, 1, 1}
	p := PlaceByNode(nodeOf, nodeShard, 2)
	if p.Size() != 8 || p.Shards() != 2 {
		t.Fatalf("size=%d shards=%d, want 8/2", p.Size(), p.Shards())
	}
	for rank := 0; rank < 8; rank++ {
		want := nodeShard[nodeOf[rank]]
		if got := p.ShardOf(rank); got != want {
			t.Fatalf("rank %d on shard %d, want %d", rank, got, want)
		}
	}
	if got := p.Ranks(0); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("shard 0 ranks = %v", got)
	}
	if got := p.Ranks(1); len(got) != 4 || got[0] != 4 || got[3] != 7 {
		t.Fatalf("shard 1 ranks = %v", got)
	}
}

func TestPlacementValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range shard did not panic")
		}
	}()
	NewPlacement([]int{0, 2}, 2)
}
