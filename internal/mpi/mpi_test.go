package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"scimpich/internal/datatype"
)

func fill(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + 7)
	}
	return b
}

// runPair runs main on a 2-node, 1-proc-per-node cluster.
func runPair(t *testing.T, main func(c *Comm)) time.Duration {
	t.Helper()
	return Run(DefaultConfig(2, 1), main)
}

func TestSendRecvSizesInterNode(t *testing.T) {
	// Cover short (64B), eager (4kiB) and rendezvous (512kiB) paths.
	for _, size := range []int{0, 64, 4096, 512 << 10} {
		size := size
		t.Run(fmt.Sprintf("%dB", size), func(t *testing.T) {
			src := fill(size)
			runPair(t, func(c *Comm) {
				switch c.Rank() {
				case 0:
					c.Send(src, size, datatype.Byte, 1, 5)
				case 1:
					dst := make([]byte, size)
					st := c.Recv(dst, size, datatype.Byte, 0, 5)
					if st.Bytes != int64(size) || st.Source != 0 || st.Tag != 5 {
						t.Errorf("status = %+v, want %d bytes from 0 tag 5", st, size)
					}
					if !bytes.Equal(dst, src) {
						t.Error("received data mismatch")
					}
				}
			})
		})
	}
}

func TestSendRecvIntraNode(t *testing.T) {
	src := fill(256 << 10)
	Run(DefaultConfig(1, 2), func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(src, len(src), datatype.Byte, 1, 0)
		case 1:
			dst := make([]byte, len(src))
			c.Recv(dst, len(dst), datatype.Byte, 0, 0)
			if !bytes.Equal(dst, src) {
				t.Error("intra-node data mismatch")
			}
		}
	})
}

func TestSelfSend(t *testing.T) {
	runPair(t, func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		src := fill(1000)
		dst := make([]byte, 1000)
		c.Send(src, 1000, datatype.Byte, 0, 9)
		c.Recv(dst, 1000, datatype.Byte, 0, 9)
		if !bytes.Equal(dst, src) {
			t.Error("self-send mismatch")
		}
	})
}

func TestNonContiguousRoundTripFF(t *testing.T) {
	// 256 kiB payload in 128-byte blocks with equal gaps (the noncontig
	// benchmark's shape), sent with a vector type on both sides.
	const blocks = 2048
	ty := datatype.Vector(blocks, 16, 32, datatype.Float64).Commit()
	extent := ty.Extent()
	src := fill(int(extent) + 64)
	runPair(t, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(src, 1, ty, 1, 0)
		case 1:
			dst := make([]byte, len(src))
			st := c.Recv(dst, 1, ty, 0, 0)
			if st.Bytes != ty.Size() {
				t.Errorf("received %d bytes, want %d", st.Bytes, ty.Size())
			}
			checkTyped(t, ty, src, dst)
		}
	})
}

// checkTyped verifies dst matches src on the type's data bytes and is
// untouched (zero) in the gaps.
func checkTyped(t *testing.T, ty *datatype.Type, src, dst []byte) {
	t.Helper()
	covered := make([]bool, len(src))
	for _, b := range ty.TypeMap() {
		for j := int64(0); j < b.Len; j++ {
			covered[b.Off+j] = true
		}
	}
	for i := range dst {
		if covered[i] && dst[i] != src[i] {
			t.Fatalf("data byte %d mismatch", i)
		}
		if !covered[i] && dst[i] != 0 {
			t.Fatalf("gap byte %d overwritten", i)
		}
	}
}

func TestNonContiguousGenericBaseline(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.Protocol.UseFF = false
	ty := datatype.Vector(1024, 32, 64, datatype.Float64).Commit()
	src := fill(int(ty.Extent()) + 64)
	Run(cfg, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(src, 1, ty, 1, 0)
		case 1:
			dst := make([]byte, len(src))
			c.Recv(dst, 1, ty, 0, 0)
			checkTyped(t, ty, src, dst)
		}
	})
}

func TestFFFasterThanGenericForStridedVector(t *testing.T) {
	// The core claim of paper §3.4: direct_pack_ff beats the generic
	// pipeline for reasonable block sizes.
	ty := datatype.Vector(2048, 16, 32, datatype.Float64).Commit() // 128B blocks, 256 kiB payload
	src := fill(int(ty.Extent()) + 64)
	elapsed := func(useFF bool) time.Duration {
		cfg := DefaultConfig(2, 1)
		cfg.Protocol.UseFF = useFF
		var d time.Duration
		Run(cfg, func(c *Comm) {
			switch c.Rank() {
			case 0:
				start := c.WtimeDuration()
				for i := 0; i < 4; i++ {
					c.Send(src, 1, ty, 1, i)
				}
				d = c.WtimeDuration() - start
			case 1:
				dst := make([]byte, len(src))
				for i := 0; i < 4; i++ {
					c.Recv(dst, 1, ty, 0, i)
				}
			}
		})
		return d
	}
	ff, gen := elapsed(true), elapsed(false)
	if ff >= gen {
		t.Errorf("direct_pack_ff (%v) not faster than generic (%v) for 128B blocks", ff, gen)
	}
}

func TestMixedTypesAcrossSides(t *testing.T) {
	// Sender strided, receiver contiguous: the classic pack-on-send-only
	// case. Data must arrive densely packed.
	ty := datatype.Vector(512, 8, 16, datatype.Float64).Commit()
	src := fill(int(ty.Extent()) + 64)
	runPair(t, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(src, 1, ty, 1, 0)
		case 1:
			dst := make([]byte, ty.Size())
			c.Recv(dst, int(ty.Size()), datatype.Byte, 0, 0)
			// Expected: the canonical linearization (vector types have a
			// single leaf, so ff and canonical coincide).
			var want []byte
			for _, b := range ty.TypeMap() {
				want = append(want, src[b.Off:b.Off+b.Len]...)
			}
			if !bytes.Equal(dst, want) {
				t.Error("contiguous receive of strided send mismatched")
			}
		}
	})
}

func TestTagAndSourceMatching(t *testing.T) {
	runPair(t, func(c *Comm) {
		switch c.Rank() {
		case 0:
			a := []byte{1}
			b := []byte{2}
			c.Send(a, 1, datatype.Byte, 1, 10)
			c.Send(b, 1, datatype.Byte, 1, 20)
		case 1:
			buf := make([]byte, 1)
			// Receive tag 20 first, although tag 10 arrived earlier.
			c.Recv(buf, 1, datatype.Byte, 0, 20)
			if buf[0] != 2 {
				t.Errorf("tag-20 recv got %d, want 2", buf[0])
			}
			st := c.Recv(buf, 1, datatype.Byte, AnySource, AnyTag)
			if buf[0] != 1 || st.Tag != 10 {
				t.Errorf("wildcard recv got %d tag %d, want 1 tag 10", buf[0], st.Tag)
			}
		}
	})
}

func TestMessageOrderingPerPair(t *testing.T) {
	// Non-overtaking: same source, same tag: messages arrive in order.
	const n = 20
	runPair(t, func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < n; i++ {
				c.Send([]byte{byte(i)}, 1, datatype.Byte, 1, 0)
			}
		case 1:
			buf := make([]byte, 1)
			for i := 0; i < n; i++ {
				c.Recv(buf, 1, datatype.Byte, 0, 0)
				if buf[0] != byte(i) {
					t.Fatalf("message %d overtaken by %d", i, buf[0])
				}
			}
		}
	})
}

func TestEagerCreditBackpressure(t *testing.T) {
	// More in-flight eager sends than slots: the sender must block until
	// credits return, and no data may be lost.
	const msgs = 30
	const size = 4096
	runPair(t, func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < msgs; i++ {
				buf := bytes.Repeat([]byte{byte(i + 1)}, size)
				c.Send(buf, size, datatype.Byte, 1, i)
			}
		case 1:
			// Delay receiving so sends must queue.
			c.Proc().Sleep(time.Millisecond)
			buf := make([]byte, size)
			for i := 0; i < msgs; i++ {
				c.Recv(buf, size, datatype.Byte, 0, i)
				if buf[0] != byte(i+1) || buf[size-1] != byte(i+1) {
					t.Fatalf("message %d corrupted", i)
				}
			}
		}
	})
}

func TestIsendIrecvOverlap(t *testing.T) {
	runPair(t, func(c *Comm) {
		const size = 64 << 10
		switch c.Rank() {
		case 0:
			a := fill(size)
			b := fill(size)
			ra := c.Isend(a, size, datatype.Byte, 1, 1)
			rb := c.Isend(b, size, datatype.Byte, 1, 2)
			ra.Wait()
			rb.Wait()
		case 1:
			a := make([]byte, size)
			b := make([]byte, size)
			rb := c.Irecv(b, size, datatype.Byte, 0, 2)
			ra := c.Irecv(a, size, datatype.Byte, 0, 1)
			ra.Wait()
			rb.Wait()
			if !bytes.Equal(a, fill(size)) || !bytes.Equal(b, fill(size)) {
				t.Error("overlapped transfers corrupted data")
			}
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	runPair(t, func(c *Comm) {
		peer := 1 - c.Rank()
		out := []byte{byte(c.Rank() + 40)}
		in := make([]byte, 1)
		c.Sendrecv(out, 1, datatype.Byte, peer, 0, in, 1, datatype.Byte, peer, 0)
		if in[0] != byte(peer+40) {
			t.Errorf("rank %d received %d, want %d", c.Rank(), in[0], peer+40)
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	var releases [4]time.Duration
	Run(DefaultConfig(4, 1), func(c *Comm) {
		c.Proc().Sleep(time.Duration(c.Rank()) * 100 * time.Microsecond)
		c.Barrier()
		releases[c.Rank()] = c.WtimeDuration()
	})
	latest := releases[3]
	for r, at := range releases {
		if at < 300*time.Microsecond {
			t.Errorf("rank %d released at %v, before the slowest rank arrived", r, at)
		}
		if latest-at > time.Millisecond || at-latest > time.Millisecond {
			t.Errorf("rank %d released at %v, far from %v", r, at, latest)
		}
	}
}

func TestBcastVariousRootsAndSizes(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 4} {
		for root := 0; root < procs; root++ {
			payload := fill(10000)
			Run(DefaultConfig(procs, 1), func(c *Comm) {
				buf := make([]byte, len(payload))
				if c.Rank() == root {
					copy(buf, payload)
				}
				c.Bcast(buf, len(buf), datatype.Byte, root)
				if !bytes.Equal(buf, payload) {
					t.Errorf("procs=%d root=%d rank=%d: bcast mismatch", procs, root, c.Rank())
				}
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	const procs = 5
	const count = 100
	Run(DefaultConfig(procs, 1), func(c *Comm) {
		vals := make([]float64, count)
		for i := range vals {
			vals[i] = float64(c.Rank()*count + i)
		}
		recv := make([]byte, count*8)
		c.Reduce(Float64Bytes(vals), recv, count, datatype.Float64, OpSum, 2)
		if c.Rank() == 2 {
			got := BytesFloat64(recv)
			for i := range got {
				want := 0.0
				for r := 0; r < procs; r++ {
					want += float64(r*count + i)
				}
				if got[i] != want {
					t.Fatalf("element %d = %g, want %g", i, got[i], want)
				}
			}
		}
	})
}

func TestAllreduceMax(t *testing.T) {
	const procs = 4
	Run(DefaultConfig(procs, 1), func(c *Comm) {
		v := []int32{int32(c.Rank() * 10), int32(100 - c.Rank())}
		recv := make([]byte, 8)
		c.Allreduce(Int32Bytes(v), recv, 2, datatype.Int32, OpMax)
		got := BytesInt32(recv)
		if got[0] != 30 || got[1] != 100 {
			t.Errorf("rank %d: allreduce = %v, want [30 100]", c.Rank(), got)
		}
	})
}

func TestGatherScatter(t *testing.T) {
	const procs = 4
	Run(DefaultConfig(procs, 1), func(c *Comm) {
		mine := []byte{byte(c.Rank() + 1)}
		all := make([]byte, procs)
		c.Gather(mine, 1, datatype.Byte, all, 0)
		if c.Rank() == 0 {
			for i := range all {
				if all[i] != byte(i+1) {
					t.Fatalf("gather slot %d = %d, want %d", i, all[i], i+1)
				}
			}
		}
		out := make([]byte, 1)
		c.Scatter(all, 1, datatype.Byte, out, 0)
		if c.Rank() == 0 && out[0] != 1 {
			t.Errorf("scatter: rank 0 got %d", out[0])
		}
	})
}

func TestSMPClusterMixedTransports(t *testing.T) {
	// 2 nodes x 2 procs: ranks 0,1 share node 0; ranks 2,3 share node 1.
	// A ring exchange exercises both transports.
	const size = 32 << 10
	Run(DefaultConfig(2, 2), func(c *Comm) {
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() + c.Size() - 1) % c.Size()
		out := bytes.Repeat([]byte{byte(c.Rank() + 1)}, size)
		in := make([]byte, size)
		c.Sendrecv(out, size, datatype.Byte, next, 0, in, size, datatype.Byte, prev, 0)
		if in[0] != byte(prev+1) || in[size-1] != byte(prev+1) {
			t.Errorf("rank %d: ring exchange mismatch", c.Rank())
		}
	})
}

func TestIntraNodeFasterThanInterNode(t *testing.T) {
	const size = 1 << 20
	elapsed := func(cfg Config) time.Duration {
		var d time.Duration
		src := make([]byte, size)
		Run(cfg, func(c *Comm) {
			switch c.Rank() {
			case 0:
				start := c.WtimeDuration()
				c.Send(src, size, datatype.Byte, 1, 0)
				c.Recv(src[:1], 1, datatype.Byte, 1, 1)
				d = c.WtimeDuration() - start
			case 1:
				dst := make([]byte, size)
				c.Recv(dst, size, datatype.Byte, 0, 0)
				c.Send(dst[:1], 1, datatype.Byte, 0, 1)
			}
		})
		return d
	}
	intra := elapsed(DefaultConfig(1, 2))
	inter := elapsed(DefaultConfig(2, 1))
	if intra >= inter {
		t.Errorf("intra-node 1MiB transfer (%v) not faster than inter-node (%v)", intra, inter)
	}
}

func TestTruncationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("truncating receive did not panic")
		}
	}()
	runPair(t, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(make([]byte, 100), 100, datatype.Byte, 1, 0)
		case 1:
			c.Recv(make([]byte, 10), 10, datatype.Byte, 0, 0)
		}
	})
}

func TestWtimeAdvances(t *testing.T) {
	runPair(t, func(c *Comm) {
		t0 := c.Wtime()
		c.Proc().Sleep(time.Millisecond)
		if d := c.Wtime() - t0; d < 0.0009 || d > 0.0011 {
			t.Errorf("Wtime advanced %g s, want ~0.001", d)
		}
	})
}

func TestDeterministicRuns(t *testing.T) {
	run := func() time.Duration {
		return Run(DefaultConfig(4, 2), func(c *Comm) {
			buf := make([]byte, 64<<10)
			for i := 0; i < 3; i++ {
				c.Barrier()
				next := (c.Rank() + 1) % c.Size()
				prev := (c.Rank() + c.Size() - 1) % c.Size()
				in := make([]byte, len(buf))
				c.Sendrecv(buf, len(buf), datatype.Byte, next, i, in, len(in), datatype.Byte, prev, i)
			}
		})
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical runs ended at %v and %v", a, b)
	}
}
