package mpi

import (
	"scimpich/internal/datatype"
)

// Persistent requests (MPI_Send_init / MPI_Recv_init / MPI_Start): fixed
// communication arguments reused across many iterations, the idiom of
// stencil halo loops.

// PersistentRequest is an inactive communication template.
type PersistentRequest struct {
	c      *Comm
	isSend bool
	buf    []byte
	count  int
	dt     *datatype.Type
	peer   int
	tag    int

	active *Request
}

// SendInit creates a persistent send request (MPI_Send_init).
func (c *Comm) SendInit(buf []byte, count int, dt *datatype.Type, dst, tag int) *PersistentRequest {
	return &PersistentRequest{c: c, isSend: true, buf: buf, count: count, dt: dt, peer: dst, tag: tag}
}

// RecvInit creates a persistent receive request (MPI_Recv_init).
func (c *Comm) RecvInit(buf []byte, count int, dt *datatype.Type, src, tag int) *PersistentRequest {
	return &PersistentRequest{c: c, isSend: false, buf: buf, count: count, dt: dt, peer: src, tag: tag}
}

// Start activates the request (MPI_Start). Starting an already-active
// request panics.
func (pr *PersistentRequest) Start() {
	if pr.active != nil {
		panic("mpi: Start on an active persistent request")
	}
	if pr.isSend {
		pr.active = pr.c.Isend(pr.buf, pr.count, pr.dt, pr.peer, pr.tag)
	} else {
		pr.active = pr.c.Irecv(pr.buf, pr.count, pr.dt, pr.peer, pr.tag)
	}
}

// Wait completes the active operation and returns the request to the
// inactive state (nil status for sends).
func (pr *PersistentRequest) Wait() *Status {
	if pr.active == nil {
		panic("mpi: Wait on an inactive persistent request")
	}
	st := pr.active.Wait()
	pr.active = nil
	return st
}

// Active reports whether the request has been started and not yet waited.
func (pr *PersistentRequest) Active() bool { return pr.active != nil }

// StartAll starts every request (MPI_Startall).
func StartAll(reqs []*PersistentRequest) {
	for _, r := range reqs {
		r.Start()
	}
}

// WaitAllPersistent completes every active request.
func WaitAllPersistent(reqs []*PersistentRequest) {
	for _, r := range reqs {
		r.Wait()
	}
}

// Ssend is the synchronous send (MPI_Ssend): it completes only after the
// matching receive has been posted, implemented by always taking the
// rendezvous path regardless of message size.
func (c *Comm) Ssend(buf []byte, count int, dt *datatype.Type, dst, tag int) {
	p := c.p
	w := c.rk.w
	p.Sleep(w.protocol().CallOverhead)
	worldDst := c.worldRank(dst)
	if worldDst == c.rk.id {
		panic("mpi: synchronous self-send would deadlock")
	}
	bytes := dt.Size() * int64(count)
	if err := c.sendRendezvousTo(buf, count, dt, worldDst, tag, c.ctx, bytes); err != nil {
		panic(err)
	}
}

// Alltoallv is the variable-count all-to-all (MPI_Alltoallv): the slice for
// rank r starts at element sdispls[r] of send with sendCounts[r] elements,
// and symmetric for the receive side. It panics on failures; use
// AlltoallvChecked under fault plans.
func (c *Comm) Alltoallv(send []byte, sendCounts, sdispls []int, dt *datatype.Type,
	recv []byte, recvCounts, rdispls []int) {
	mustColl(c.AlltoallvChecked(send, sendCounts, sdispls, dt, recv, recvCounts, rdispls))
}

// AlltoallvChecked is Alltoallv returning failures as typed errors
// (pairwise exchange).
func (c *Comm) AlltoallvChecked(send []byte, sendCounts, sdispls []int, dt *datatype.Type,
	recv []byte, recvCounts, rdispls []int) error {
	size := c.Size()
	if len(sendCounts) != size || len(sdispls) != size || len(recvCounts) != size || len(rdispls) != size {
		return argErrf("Alltoallv", "argument lengths %d/%d/%d/%d for %d ranks",
			len(sendCounts), len(sdispls), len(recvCounts), len(rdispls), size)
	}
	cc := c.collective()
	me := c.Rank()
	es := dt.Size()
	copy(recv[int64(rdispls[me])*es:int64(rdispls[me])*es+int64(recvCounts[me])*es],
		send[int64(sdispls[me])*es:int64(sdispls[me])*es+int64(sendCounts[me])*es])
	for step := 1; step < size; step++ {
		to := (me + step) % size
		from := (me - step + size) % size
		so := int64(sdispls[to]) * es
		ro := int64(rdispls[from]) * es
		if err := cc.sendrecvColl(
			send[so:so+int64(sendCounts[to])*es], sendCounts[to], dt, to, tagAlltoall+step,
			recv[ro:ro+int64(recvCounts[from])*es], recvCounts[from], dt, from, tagAlltoall+step,
		); err != nil {
			return err
		}
	}
	return nil
}
