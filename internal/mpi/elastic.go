package mpi

import (
	"fmt"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/fault"
	"scimpich/internal/obs/flight"
	"scimpich/internal/sim"
)

// Elastic worlds (ULFM-style shrink-to-survivors recovery). A fault plan
// can crash nodes mid-run; this file turns that from a job-killing event
// into a recoverable one:
//
//   - a failure detector over the liveness ground truth (NodeAlive) with a
//     sticky per-rank suspicion set — once a rank has been observed dead it
//     stays suspected, even if the fault plan later restores its node;
//   - revocation: once survivors agree a rank is out, every transport
//     drops traffic to and from it, in-flight operations against it
//     complete with *RevokedRankError, and new operations fail fast
//     instead of waiting for watchdogs;
//   - ShrinkChecked: a deterministic agreement protocol among survivors
//     producing a new communicator over exactly the surviving ranks, with
//     fresh contexts and rebuilt collective-window state. It tolerates
//     further crashes mid-agreement by re-running the agreement from the
//     shrunken membership until a confirmation barrier over the survivors
//     succeeds.
//
// The agreement record is shared World state: in the modelled system it is
// a replicated register every member deposits into (the simulation bills
// the control writes), so the decision is uniform even if the member that
// sealed it crashes immediately afterwards. Determinism per fault seed
// follows from the deterministic simulation: same seed, same schedule,
// same survivor set.

// tagShrink is the tag space of the shrink confirmation barrier.
const tagShrink = 17 << 20

// RevokedRankError reports an operation against (or by) a rank that a
// completed shrink agreement excluded from the world. Unlike a plain
// connection loss it is permanent: a restored node does not clear it.
type RevokedRankError struct {
	Rank int
}

func (e *RevokedRankError) Error() string {
	return fmt.Sprintf("mpi: rank %d was revoked by a shrink agreement", e.Rank)
}

// Suspect marks a world rank as suspected dead in the failure detector.
// Suspicion is sticky: it survives a fault-plan RestoreNode, so a node
// that crashes and comes back cannot rejoin a world that moved on.
func (w *World) Suspect(rank int) {
	if !w.suspects[rank] {
		w.ranks[rank].fl.Record(w.host.Now(), flight.KSuspect, int64(rank), 0, 0, 0)
	}
	w.suspects[rank] = true
}

// Suspected reports whether the failure detector suspects a world rank.
func (w *World) Suspected(rank int) bool { return w.suspects[rank] }

// RankRevoked reports whether a completed shrink agreement excluded the
// world rank. Layered libraries (one-sided windows, rmem) use it to fail
// operations against revoked targets fast.
func (w *World) RankRevoked(rank int) bool { return w.revoked[rank] }

// NodeOf returns the cluster node a world rank runs on.
func (w *World) NodeOf(rank int) int { return w.ranks[rank].node }

// probeSuspects runs one failure-detector sweep over the communicator's
// members: every member whose node is down joins the sticky suspect set.
func (c *Comm) probeSuspects() {
	for _, r := range c.groupRanks() {
		if !c.w.NodeAlive(r) {
			c.w.Suspect(r)
		}
	}
}

// ProbeFailures runs one failure-detector sweep and returns the member
// world ranks currently suspected dead or already revoked.
func (c *Comm) ProbeFailures() []int {
	c.probeSuspects()
	var out []int
	for _, r := range c.groupRanks() {
		if c.w.suspects[r] || c.w.revoked[r] {
			out = append(out, r)
		}
	}
	return out
}

// revokeRank excludes a world rank after a shrink agreement: every
// transport drops its traffic (see World.ring), and every other rank's
// device fails its in-flight operations against the rank — posted receives
// bound to it and rendezvous transfers mid-flight complete with
// *RevokedRankError immediately instead of waiting for watchdogs.
func (w *World) revokeRank(p *sim.Proc, r int) {
	if w.revoked[r] {
		return
	}
	w.revoked[r] = true
	w.suspects[r] = true
	w.cfg.Tracer.Record(p.Now(), w.ranks[r].actor, "fault",
		"rank %d revoked by survivor agreement", r)
	w.ranks[r].fl.Record(p.Now(), flight.KRevoke, int64(r), 0, 0, 0)
	err := &RevokedRankError{Rank: r}
	for _, rk := range w.ranks {
		if rk.id == r {
			continue
		}
		rk.dev.failFrom(r, err)
	}
}

// resetCollState drops the lazily built collective windows, view matrices
// and chooser snapshots after a shrink. The algorithms rebuild them over
// the surviving membership on next use; every survivor is inside the
// agreement when this runs, so no collective is in flight. The abandoned
// segments stay exported but unread — stale deposits by a restored node
// land in memory nobody looks at.
func (w *World) resetCollState() {
	w.collWins = nil
	w.collViews = nil
	w.collSnaps = nil
}

// shrinkRec is the replicated decision record of one matched ShrinkChecked
// call: the per-member suspicion snapshots, and — once a member's wait is
// satisfied and it seals the record — the agreed dead set and the context
// pair of the shrunken communicator.
type shrinkRec struct {
	deposits map[int][]int // member world rank -> its suspicion snapshot
	sealed   bool
	dead     []int
	ctx      [2]int
}

func (w *World) shrinkRec(key string) *shrinkRec {
	if w.shrinkRecs == nil {
		w.shrinkRecs = make(map[string]*shrinkRec)
	}
	rec, ok := w.shrinkRecs[key]
	if !ok {
		rec = &shrinkRec{deposits: make(map[int][]int)}
		w.shrinkRecs[key] = rec
	}
	return rec
}

// suspectSnapshot returns this rank's current suspicion set restricted to
// the communicator's members.
func (c *Comm) suspectSnapshot() []int {
	var out []int
	for _, r := range c.groupRanks() {
		if c.w.suspects[r] {
			out = append(out, r)
		}
	}
	return out
}

// agreementPoll is the interval at which a member waiting for deposits
// re-reads the agreement record and re-probes liveness.
func (w *World) agreementPoll() time.Duration {
	d := 8 * w.collCtl()
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

// agreementDeadline bounds a member's total wait for the other survivors
// to enter the agreement. It is sized for the slowest legitimate entry
// path: a survivor that only notices the failure when its one-sided fence
// watchdog expires, plus collective-scale slack.
func (w *World) agreementDeadline() time.Duration {
	return w.ScaledSyncTimeout() + 4*w.ScaledCollTimeout()
}

// ShrinkChecked is the survivors' recovery collective: every live member
// of the communicator calls it after observing a failure, and each
// receives a new communicator over exactly the agreed surviving ranks,
// with fresh contexts and rebuilt collective state. A caller whose own
// rank is dead or revoked receives *RevokedRankError.
//
// The agreement tolerates further crashes while it runs: after the
// survivors decide a dead set, a confirmation barrier (bounded by the
// scaled collective watchdog even when CollTimeout is 0) validates that
// the agreed membership is actually alive; if it fails, the agreement
// re-runs from the already-shrunken communicator. A member that deposits
// its snapshot and then crashes may still land in the decided membership —
// the next collective on the shrunken communicator fails fast and the
// caller shrinks again, the usual ULFM contract.
func (c *Comm) ShrinkChecked() (*Comm, error) {
	cur := c
	for attempt := 0; attempt <= len(c.groupRanks()); attempt++ {
		next, err := cur.shrinkOnce()
		if err != nil {
			c.rk.fl.Fail(c.p.Now(), flight.OpShrink, -1, err)
			return nil, err
		}
		if err := next.confirmShrink(); err == nil {
			return next, nil
		}
		// A further crash surfaced during confirmation: agree again from
		// the already-shrunken membership.
		cur = next
	}
	err := &fault.Error{Kind: fault.Timeout, From: c.rk.id, To: -1, At: c.p.Now()}
	c.rk.fl.Fail(c.p.Now(), flight.OpShrink, -1, err)
	return nil, err
}

// shrinkOnce runs one round of the agreement on this communicator.
func (c *Comm) shrinkOnce() (*Comm, error) {
	w := c.rk.w
	p := c.p
	me := c.rk.id
	p.Sleep(w.protocol().CallOverhead)
	if w.revoked[me] || !w.NodeAlive(me) {
		return nil, &RevokedRankError{Rank: me}
	}
	key := fmt.Sprintf("mpi.shrink.%d.%d", c.ctx, w.callSeq("shrink", c.ctx, me))
	agreeID := flight.DigestString(key)
	rec := w.shrinkRec(key)
	c.probeSuspects()

	// Deposit this rank's suspicion snapshot into the agreement record: in
	// the modelled system one posted control write per live member.
	rec.deposits[me] = c.suspectSnapshot()
	c.rk.fl.Record(p.Now(), flight.KShrinkDeposit, agreeID,
		int64(len(rec.deposits[me])), flight.DigestInts(rec.deposits[me]), 0)
	live := 0
	for _, r := range c.groupRanks() {
		if r != me && !w.suspects[r] {
			live++
		}
	}
	p.Sleep(time.Duration(live) * w.collCtl())

	// Wait until every member this rank does not suspect has deposited (or
	// another member has sealed the decision). Each poll re-runs the
	// failure detector, so a member that crashes mid-agreement moves to
	// the suspect set instead of being waited on forever; a live member
	// that never arrives trips the agreement deadline.
	deadline := p.Now() + w.agreementDeadline()
	for !rec.sealed {
		missing := 0
		for _, r := range c.groupRanks() {
			if r == me || w.suspects[r] {
				continue
			}
			if _, ok := rec.deposits[r]; !ok {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		if p.Now() >= deadline {
			w.cfg.Tracer.Record(p.Now(), c.rk.actor, "fault",
				"shrink agreement deadline expired with %d members missing", missing)
			return nil, &fault.Error{Kind: fault.Timeout, From: me, To: -1, At: p.Now()}
		}
		p.Sleep(w.agreementPoll())
		c.probeSuspects()
		if w.revoked[me] || !w.NodeAlive(me) {
			return nil, &RevokedRankError{Rank: me}
		}
	}

	if !rec.sealed {
		// This member's wait was satisfied first: seal the decision as the
		// union of every deposited snapshot plus a final probe, so a member
		// that deposited and then crashed is still excluded when the crash
		// precedes the seal. Sealing runs without yielding (no virtual-time
		// waits), so it is atomic with respect to the other members.
		c.probeSuspects()
		dead := map[int]bool{}
		for _, r := range c.groupRanks() {
			if w.suspects[r] {
				dead[r] = true
			}
		}
		for _, snap := range rec.deposits {
			for _, r := range snap {
				dead[r] = true
			}
		}
		for _, r := range c.groupRanks() {
			if dead[r] {
				rec.dead = append(rec.dead, r)
			}
		}
		u, coll := w.nextCtxPair()
		rec.ctx = [2]int{u, coll}
		rec.sealed = true
		for _, r := range rec.dead {
			w.revokeRank(p, r)
		}
		w.resetCollState()
		w.cfg.Tracer.Record(p.Now(), c.rk.actor, "fault",
			"shrink agreement sealed: %d ranks excluded %v", len(rec.dead), rec.dead)
	}

	// Adopt the sealed decision. The adoption digest is what the
	// post-mortem agreement checker compares across members: any two
	// members of the same agreement adopting different dead sets is a
	// split-brain.
	c.rk.fl.Record(p.Now(), flight.KShrinkAdopt, agreeID,
		int64(len(rec.dead)), flight.DigestInts(rec.dead), 0)
	for _, r := range rec.dead {
		if r == me {
			return nil, &RevokedRankError{Rank: me}
		}
	}
	survivors := make([]int, 0, len(c.groupRanks()))
	for _, r := range c.groupRanks() {
		excluded := false
		for _, d := range rec.dead {
			if d == r {
				excluded = true
				break
			}
		}
		if !excluded {
			survivors = append(survivors, r)
		}
	}
	sub := *c
	sub.group = survivors
	sub.ctx, sub.collCtx = rec.ctx[0], rec.ctx[1]
	return &sub, nil
}

// confirmShrink validates the agreed membership with a dissemination
// barrier over the shrunken communicator. Every wait is bounded by the
// scaled collective watchdog regardless of the configured CollTimeout:
// the agreement must detect a further crash even in runs that otherwise
// wait forever.
func (c *Comm) confirmShrink() error {
	cc := c.collective()
	size := cc.Size()
	if size <= 1 {
		return nil
	}
	to := c.rk.w.ScaledCollTimeout()
	me := cc.Rank()
	for round, dist := 0, 1; dist < size; round, dist = round+1, dist*2 {
		dst := (me + dist) % size
		from := (me - dist + size) % size
		r := cc.irecv(nil, 0, datatype.Byte, from, tagShrink+round, cc.ctx)
		if err := cc.send(nil, 0, datatype.Byte, dst, tagShrink+round, cc.ctx); err != nil {
			return err
		}
		if err := cc.waitCollT(r, from, tagShrink+round, to); err != nil {
			return err
		}
	}
	return nil
}
