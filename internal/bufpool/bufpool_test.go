package bufpool

import (
	"testing"
)

func TestGetLenAndRecycle(t *testing.T) {
	b := Get(1000)
	if len(b.B) != 1000 {
		t.Fatalf("len = %d, want 1000", len(b.B))
	}
	if cap(b.B) != 1024 {
		t.Fatalf("cap = %d, want size class 1024", cap(b.B))
	}
	b.B[999] = 0xAB
	b.Put()
	// The next same-class Get must reuse the buffer (single goroutine, no
	// GC pressure in between).
	c := Get(600)
	if cap(c.B) != 1024 {
		t.Fatalf("recycled cap = %d, want 1024", cap(c.B))
	}
	if len(c.B) != 600 {
		t.Fatalf("recycled len = %d, want 600", len(c.B))
	}
	if c.B[999:1000][0] != 0xAB {
		t.Fatal("expected the recycled backing array (stale bytes preserved)")
	}
	c.Put()
}

func TestTinyAndOversizedRequests(t *testing.T) {
	tiny := Get(1)
	if len(tiny.B) != 1 || cap(tiny.B) != 1<<minBits {
		t.Fatalf("tiny: len=%d cap=%d", len(tiny.B), cap(tiny.B))
	}
	tiny.Put()

	big := Get((4 << 20) + 1)
	if big.class != unpooled {
		t.Fatalf("oversized request should be unpooled, class=%d", big.class)
	}
	if len(big.B) != (4<<20)+1 {
		t.Fatalf("oversized len = %d", len(big.B))
	}
	big.Put() // must not panic
}

func TestClone(t *testing.T) {
	src := []byte{1, 2, 3, 4, 5}
	b := Clone(src)
	src[0] = 99 // clone must be independent
	if b.B[0] != 1 || len(b.B) != 5 {
		t.Fatalf("clone = %v", b.B)
	}
	b.Put()
}

func TestNilPut(t *testing.T) {
	var b *Buf
	b.Put() // no-op
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{0, 256}, {1, 256}, {256, 256}, {257, 512},
		{512, 512}, {4096, 4096}, {4097, 8192}, {4 << 20, 4 << 20},
	}
	for _, tc := range cases {
		b := Get(tc.n)
		if cap(b.B) != tc.wantCap {
			t.Errorf("Get(%d): cap %d, want %d", tc.n, cap(b.B), tc.wantCap)
		}
		b.Put()
	}
}

func TestAllocsSteadyState(t *testing.T) {
	// Warm the class, then Get/Put must not allocate.
	Get(1024).Put()
	if n := testing.AllocsPerRun(100, func() {
		b := Get(1024)
		b.B[0] = 1
		b.Put()
	}); n != 0 {
		t.Errorf("Get/Put: %v allocs/op, want 0", n)
	}
}
