// Package bufpool provides size-classed byte-buffer pools for the transfer
// pipeline's hot paths: PIO/DMA delivery capture, MPI payload staging and
// OSC scratch buffers. It follows the buffer-reuse discipline of RDMA
// stacks — a transfer grabs a pooled buffer, the delivery (or the consuming
// handler) returns it, and steady-state traffic allocates nothing.
//
// Buffers travel as *Buf handles rather than raw []byte: storing a slice in
// a sync.Pool would box the slice header on every Put, re-introducing the
// allocation the pool exists to avoid.
//
// Ownership is strictly linear: whoever holds the *Buf puts it back exactly
// once, after the last read of its bytes. The recycling points are
// documented at the call sites (and in docs/PERFORMANCE.md).
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// minBits..maxBits bound the pooled size classes: 256 B to 4 MiB in
	// powers of two. Requests above the ceiling get a plain allocation
	// (dropped on Put); requests below the floor share the smallest class.
	minBits    = 8
	maxBits    = 22
	numClasses = maxBits - minBits + 1

	// unpooled marks a Buf whose backing array did not come from a pool.
	unpooled = -1
)

// Buf is a pooled byte buffer handle. B is the usable slice, cut to the
// requested length; its capacity is the size class.
type Buf struct {
	B     []byte
	class int32
}

var pools [numClasses]sync.Pool

// stats counts pool traffic (exposed for tests and the bench harness).
var gets, puts, misses atomic.Int64

func init() {
	for i := range pools {
		class := int32(i)
		size := 1 << (minBits + i)
		pools[i].New = func() any {
			misses.Add(1)
			return &Buf{B: make([]byte, size), class: class}
		}
	}
}

// classFor returns the pool index for a request of n bytes, or unpooled.
func classFor(n int) int {
	if n <= 1<<minBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - minBits
	if c >= numClasses {
		return unpooled
	}
	return c
}

// Get returns a buffer with len(B) == n. The contents are arbitrary (the
// pool does not zero recycled memory); callers overwrite before reading,
// exactly as with a fresh make([]byte, n) that they fill.
func Get(n int) *Buf {
	gets.Add(1)
	c := classFor(n)
	if c == unpooled {
		return &Buf{B: make([]byte, n), class: unpooled}
	}
	b := pools[c].Get().(*Buf)
	b.B = b.B[:n]
	return b
}

// Clone returns a pooled buffer holding a copy of src. It replaces the
// append([]byte(nil), src...) capture pattern on delivery paths.
func Clone(src []byte) *Buf {
	b := Get(len(src))
	copy(b.B, src)
	return b
}

// Put returns the buffer to its pool. Putting nil is a no-op, so owners can
// unconditionally recycle optional buffers. The handle must not be used
// after Put.
func (b *Buf) Put() {
	if b == nil {
		return
	}
	puts.Add(1)
	if b.class == unpooled {
		return // oversized one-off: let the GC have it
	}
	b.B = b.B[:cap(b.B)]
	pools[b.class].Put(b)
}

// Stats is a snapshot of pool traffic.
type Stats struct {
	// Gets and Puts count Get/Clone calls and returns.
	Gets, Puts int64
	// Misses counts Gets that had to allocate a fresh buffer.
	Misses int64
}

// Snapshot returns the cumulative pool counters.
func Snapshot() Stats {
	return Stats{Gets: gets.Load(), Puts: puts.Load(), Misses: misses.Load()}
}
