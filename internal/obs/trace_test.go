package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTrace(0)
	outer := tr.StartSpan(0, "rank0", "send", "rdv")
	inner := tr.StartSpan(10, "rank0", "pack", "direct_pack_ff")
	other := tr.StartSpan(5, "rank1", "recv", "rdv") // different actor: no nesting
	inner.SetBytes(4096)
	inner.End(20)
	outer.SetBytes(65536)
	outer.End(30)
	other.End(25)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]*Span{}
	for _, s := range spans {
		byName[s.Name+"/"+s.Actor] = s
	}
	o := byName["rdv/rank0"]
	i := byName["direct_pack_ff/rank0"]
	r1 := byName["rdv/rank1"]
	if o == nil || i == nil || r1 == nil {
		t.Fatalf("missing spans: %v", byName)
	}
	if o.Parent != 0 {
		t.Errorf("outer parent = %d, want 0 (root)", o.Parent)
	}
	if i.Parent != o.ID {
		t.Errorf("inner parent = %d, want outer id %d", i.Parent, o.ID)
	}
	if r1.Parent != 0 {
		t.Errorf("rank1 span parent = %d, want 0 (other actor must not nest)", r1.Parent)
	}
	if i.Duration() != 10 || o.Duration() != 30 {
		t.Errorf("durations: inner %v outer %v", i.Duration(), o.Duration())
	}
}

func TestSpanSiblingsAfterPop(t *testing.T) {
	tr := NewTrace(0)
	epoch := tr.StartSpan(0, "rank0", "osc", "epoch")
	put1 := tr.StartSpan(1, "rank0", "osc", "put")
	put1.End(2)
	put2 := tr.StartSpan(3, "rank0", "osc", "put")
	put2.End(4)
	epoch.End(5)
	if put1.Parent != epoch.ID || put2.Parent != epoch.ID {
		t.Errorf("siblings should both parent the epoch: %d %d want %d",
			put1.Parent, put2.Parent, epoch.ID)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace(0)
	s := tr.StartSpan(0, "a", "c", "n")
	s.End(10)
	s.End(99) // must not re-append or move EndAt
	if got := tr.SpanCount(); got != 1 {
		t.Fatalf("double End produced %d spans", got)
	}
	if s.EndAt != 10 {
		t.Errorf("EndAt moved to %v", s.EndAt)
	}
}

func TestOpenSpansDroppedFromExport(t *testing.T) {
	tr := NewTrace(0)
	tr.StartSpan(0, "a", "c", "never-ended")
	done := tr.StartSpan(1, "a", "c", "done")
	done.End(2)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		if e.Ph == "X" && e.Name == "never-ended" {
			t.Errorf("open span exported: %+v", e)
		}
	}
}

func TestRingKeepsNewest(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 10; i++ {
		tr.Instant(time.Duration(i), "a", "c", fmt.Sprintf("e%d", i))
		s := tr.StartSpan(time.Duration(i), "a", "c", fmt.Sprintf("s%d", i))
		s.End(time.Duration(i) + 1)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, want := range []string{"e7", "e8", "e9"} {
		if evs[i].Detail != want {
			t.Errorf("event[%d] = %q, want %q (ring must keep newest, oldest-first order)",
				i, evs[i].Detail, want)
		}
	}
	if tr.DroppedEvents() != 7 {
		t.Errorf("dropped = %d, want 7", tr.DroppedEvents())
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for i, want := range []string{"s7", "s8", "s9"} {
		if spans[i].Name != want {
			t.Errorf("span[%d] = %q, want %q", i, spans[i].Name, want)
		}
	}
}

func TestChromeRoundTrip(t *testing.T) {
	tr := NewTrace(0)
	tr.Instant(5, "rank1", "fault", "crc injected")
	outer := tr.StartSpan(0, "rank0", "send", "rdv")
	inner := tr.StartSpan(10, "rank0", "pack", "direct_pack_ff")
	inner.SetBytes(4096)
	inner.SetDetail("blocks=%d", 8)
	inner.End(20)
	outer.SetBytes(65536)
	outer.End(30)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadChrome(&buf)
	if err != nil {
		t.Fatalf("WriteChrome output does not parse back: %v", err)
	}

	var meta, complete, instant int
	byName := map[string]ChromeEvent{}
	for _, e := range evs {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			byName[e.Name] = e
		case "i":
			instant++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if meta != 2 { // rank1 and rank0 thread_name records
		t.Errorf("thread_name metadata = %d, want 2", meta)
	}
	if complete != 2 || instant != 1 {
		t.Errorf("complete=%d instant=%d, want 2/1", complete, instant)
	}

	o, i := byName["rdv"], byName["direct_pack_ff"]
	if o.Cat != "send" || i.Cat != "pack" {
		t.Errorf("categories: %q %q", o.Cat, i.Cat)
	}
	// Span nesting must survive the round trip via args.id / args.parent.
	oid, ok1 := o.Args["id"].(float64)
	pid, ok2 := i.Args["parent"].(float64)
	if !ok1 || !ok2 || oid != pid {
		t.Errorf("nesting lost: outer id=%v inner parent=%v", o.Args["id"], i.Args["parent"])
	}
	if b, _ := i.Args["bytes"].(float64); b != 4096 {
		t.Errorf("inner bytes = %v", i.Args["bytes"])
	}
	if d, _ := i.Args["detail"].(string); d != "blocks=8" {
		t.Errorf("inner detail = %v", i.Args["detail"])
	}
	// Timestamps are microseconds: outer started at 0ns for 30ns = 0.03µs.
	if o.Ts != 0 || o.Dur != 0.03 {
		t.Errorf("outer ts/dur = %v/%v, want 0/0.03", o.Ts, o.Dur)
	}
	// Inner must lie within the outer span on the same tid.
	if i.Ts < o.Ts || i.Ts+i.Dur > o.Ts+o.Dur || i.Tid != o.Tid {
		t.Errorf("inner not nested in outer: inner [%v,+%v] tid %d, outer [%v,+%v] tid %d",
			i.Ts, i.Dur, i.Tid, o.Ts, o.Dur, o.Tid)
	}
}

func TestSummarize(t *testing.T) {
	tr := NewTrace(0)
	for i := 0; i < 4; i++ {
		s := tr.StartSpan(time.Duration(i*100), "rank0", "send", "eager")
		s.SetBytes(1000)
		s.End(time.Duration(i*100 + 50))
	}
	s := tr.StartSpan(0, "rank1", "osc", "put")
	s.SetBytes(64)
	s.End(7)

	sums := tr.Summarize()
	if len(sums) != 2 {
		t.Fatalf("got %d categories, want 2: %+v", len(sums), sums)
	}
	if sums[0].Category != "osc" || sums[1].Category != "send" {
		t.Fatalf("not sorted by category: %+v", sums)
	}
	send := sums[1]
	if send.Spans != 4 || send.Bytes != 4000 || send.Total != 200 || send.Max != 50 {
		t.Errorf("send summary = %+v", send)
	}

	// SummarizeChrome over the exported file must agree on counts and bytes.
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	csums := SummarizeChrome(evs)
	if len(csums) != 2 || csums[1].Spans != 4 || csums[1].Bytes != 4000 {
		t.Errorf("chrome summary = %+v", csums)
	}
}

func TestTraceConcurrency(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			actor := fmt.Sprintf("rank%d", g)
			for i := 0; i < 200; i++ {
				tr.Instantf(time.Duration(i), actor, "send", "ev %d", i)
				s := tr.StartSpan(time.Duration(i), actor, "send", "op")
				s.AddBytes(8)
				s.End(time.Duration(i + 1))
			}
		}(g)
	}
	wg.Wait()
	if got := tr.EventCount(); got != 64 {
		t.Errorf("events retained = %d, want limit 64", got)
	}
	if got := tr.SpanCount(); got != 64 {
		t.Errorf("spans retained = %d, want limit 64", got)
	}
	if got := len(tr.Actors()); got != 8 {
		t.Errorf("actors = %d, want 8", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
}
