package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// CategorySummary aggregates the completed spans of one category: how
// many, how many bytes they moved, and the latency distribution.
type CategorySummary struct {
	Category string
	Spans    int64
	Bytes    int64
	Total    time.Duration // summed span durations
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
}

// catAgg accumulates one category while summarizing.
type catAgg struct {
	bytes int64
	hist  *Histogram
}

// Summarize aggregates a live trace's completed spans per category,
// sorted by category name.
func (t *Trace) Summarize() []CategorySummary {
	if t == nil {
		return nil
	}
	aggs := make(map[string]*catAgg)
	for _, s := range t.Spans() {
		a := aggs[s.Category]
		if a == nil {
			a = &catAgg{hist: &Histogram{}}
			aggs[s.Category] = a
		}
		a.bytes += s.Bytes
		a.hist.ObserveDuration(s.Duration())
	}
	return finishSummaries(aggs)
}

// SummarizeChrome aggregates the complete ("X") events of a parsed Chrome
// trace per category (tracestat's core).
func SummarizeChrome(evs []ChromeEvent) []CategorySummary {
	aggs := make(map[string]*catAgg)
	for _, e := range evs {
		if e.Ph != "X" {
			continue
		}
		cat := e.Cat
		if cat == "" {
			cat = "(uncategorized)"
		}
		a := aggs[cat]
		if a == nil {
			a = &catAgg{hist: &Histogram{}}
			aggs[cat] = a
		}
		if b, ok := e.Args["bytes"]; ok {
			if f, ok := b.(float64); ok {
				a.bytes += int64(f)
			}
		}
		a.hist.Observe(int64(e.Dur * 1e3)) // µs back to ns
	}
	return finishSummaries(aggs)
}

func finishSummaries(aggs map[string]*catAgg) []CategorySummary {
	var out []CategorySummary
	for cat, a := range aggs {
		s := a.hist.Snapshot()
		out = append(out, CategorySummary{
			Category: cat,
			Spans:    s.Count,
			Bytes:    a.bytes,
			Total:    time.Duration(s.Sum),
			P50:      time.Duration(s.P50),
			P95:      time.Duration(s.P95),
			P99:      time.Duration(s.P99),
			Max:      time.Duration(s.Max),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Category < out[j].Category })
	return out
}

// WriteSummaries renders per-category summaries as an aligned text table.
func WriteSummaries(w io.Writer, sums []CategorySummary) {
	if len(sums) == 0 {
		fmt.Fprintln(w, "(no spans)")
		return
	}
	fmt.Fprintf(w, "%-16s %8s %12s %12s %10s %10s %10s %10s\n",
		"category", "spans", "bytes", "total", "p50", "p95", "p99", "max")
	for _, s := range sums {
		fmt.Fprintf(w, "%-16s %8d %12d %12v %10v %10v %10v %10v\n",
			s.Category, s.Spans, s.Bytes, s.Total.Round(time.Microsecond),
			s.P50.Round(time.Nanosecond), s.P95.Round(time.Nanosecond),
			s.P99.Round(time.Nanosecond), s.Max.Round(time.Nanosecond))
	}
}
