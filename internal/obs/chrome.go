package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event JSON export: the JSON Object Format of the Trace
// Event spec (one {"traceEvents": [...]} object), loadable in
// chrome://tracing and Perfetto. Spans become complete ("X") events with
// microsecond timestamps on one thread per actor; instant events become
// "i" events; actor names are emitted as thread_name metadata.

// ChromeEvent is one entry of the traceEvents array (both what we write
// and what tracestat reads back).
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// ChromeOther is the exporter metadata carried in the file's otherData
// field: how many spans and instant events the trace ring evicted before
// the export, so downstream consumers can tell a complete trace from a
// truncated one.
type ChromeOther struct {
	DroppedSpans  int64 `json:"droppedSpans,omitempty"`
	DroppedEvents int64 `json:"droppedEvents,omitempty"`
}

// chromeFile is the top-level JSON object.
type chromeFile struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	OtherData       *ChromeOther  `json:"otherData,omitempty"`
}

// usPerNs converts virtual-time nanoseconds to trace-event microseconds.
const usPerNs = 1e-3

// WriteChrome writes the trace as Chrome trace-event JSON. Open
// (never-ended) spans are dropped; instant events are included. The export
// is a snapshot: tracing may continue afterwards.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteChrome on a nil trace")
	}
	t.mu.Lock()
	actors := append([]string(nil), t.actors...)
	actorID := make(map[string]int, len(actors))
	for id, a := range actors {
		actorID[a] = id
	}
	t.mu.Unlock()

	var evs []ChromeEvent
	for id, a := range actors {
		evs = append(evs, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: id,
			Args: map[string]any{"name": a},
		})
	}
	for _, s := range t.Spans() {
		args := map[string]any{"id": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		if s.Bytes != 0 {
			args["bytes"] = s.Bytes
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		evs = append(evs, ChromeEvent{
			Name: s.Name, Cat: s.Category, Ph: "X",
			Ts: float64(s.Start) * usPerNs, Dur: float64(s.EndAt-s.Start) * usPerNs,
			Pid: 0, Tid: actorID[s.Actor], Args: args,
		})
	}
	for _, e := range t.Events() {
		evs = append(evs, ChromeEvent{
			Name: e.Detail, Cat: e.Category, Ph: "i", S: "t",
			Ts: float64(e.At) * usPerNs, Pid: 0, Tid: actorID[e.Actor],
		})
	}
	f := chromeFile{TraceEvents: evs, DisplayTimeUnit: "ns"}
	if ds, de := t.DroppedSpans(), t.DroppedEvents(); ds > 0 || de > 0 {
		f.OtherData = &ChromeOther{DroppedSpans: ds, DroppedEvents: de}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// ReadChrome parses a Chrome trace-event JSON file (the object format
// WriteChrome emits; a bare traceEvents array is accepted too) and returns
// its events.
func ReadChrome(r io.Reader) ([]ChromeEvent, error) {
	evs, _, err := ReadChromeMeta(r)
	return evs, err
}

// ReadChromeMeta is ReadChrome returning the exporter metadata too. A file
// without otherData (including the bare-array form) yields a zero
// ChromeOther.
func ReadChromeMeta(r io.Reader) ([]ChromeEvent, ChromeOther, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, ChromeOther{}, err
	}
	var f chromeFile
	if err := json.Unmarshal(data, &f); err == nil && f.TraceEvents != nil {
		var other ChromeOther
		if f.OtherData != nil {
			other = *f.OtherData
		}
		return f.TraceEvents, other, nil
	}
	var evs []ChromeEvent
	if err := json.Unmarshal(data, &evs); err != nil {
		return nil, ChromeOther{}, fmt.Errorf("obs: not a Chrome trace-event file: %w", err)
	}
	return evs, ChromeOther{}, nil
}
