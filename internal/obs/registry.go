package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil counter discards
// everything.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move both ways (set to the latest snapshot
// value). The nil gauge discards everything.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. No-op on a nil gauge.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Max raises the gauge to n if n is larger (a high-water mark).
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Unit describes what a histogram's samples measure; WriteText formats the
// distribution accordingly. A histogram's unit is fixed at first use.
type Unit int

const (
	// UnitDuration samples are latencies in nanoseconds (the default;
	// printed in humane duration form).
	UnitDuration Unit = iota
	// UnitBytes samples are byte counts (printed with binary suffixes).
	UnitBytes
	// UnitCount samples are plain counts (printed as bare integers).
	UnitCount
)

func (u Unit) String() string {
	switch u {
	case UnitBytes:
		return "bytes"
	case UnitCount:
		return "count"
	default:
		return "duration"
	}
}

// Registry is a process-wide set of named metrics. Collectors are created
// on first lookup and cached; concurrent lookups and updates are safe. The
// nil registry hands out nil collectors, which discard everything.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	histUnits map[string]Unit
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		histUnits: make(map[string]Unit),
	}
}

// Name builds a labelled metric name: Name("sci.bytes", "node", "3") is
// "sci.bytes{node=3}". Labels come in key, value pairs.
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(labels[i])
		sb.WriteByte('=')
		sb.WriteString(labels[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// default UnitDuration. A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramUnit(name, UnitDuration)
}

// HistogramUnit returns the named histogram, creating it on first use and
// tagging it with the sample unit. The first creation fixes the unit; later
// lookups (with any unit) return the same histogram unchanged, so mixed
// callers cannot flip a distribution's formatting mid-run.
func (r *Registry) HistogramUnit(name string, u Unit) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
		r.histUnits[name] = u
	}
	return h
}

// HistogramUnitOf reports the unit the named histogram was created with
// (UnitDuration when the histogram does not exist).
func (r *Registry) HistogramUnitOf(name string) Unit {
	if r == nil {
		return UnitDuration
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.histUnits[name]
}

// SetGauge is shorthand for Gauge(name).Set(v).
func (r *Registry) SetGauge(name string, v int64) { r.Gauge(name).Set(v) }

// WriteText dumps every metric as plain text, sorted by name: counters and
// gauges one per line, histograms with count/min/quantiles/max. Histogram
// samples are formatted by the unit the histogram was created with: humane
// durations (the default), binary byte sizes, or bare counts.
func (r *Registry) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	type entry struct {
		name string
		line string
	}
	var entries []entry
	for name, c := range r.counters {
		entries = append(entries, entry{name, fmt.Sprintf("counter %-52s %d", name, c.Value())})
	}
	for name, g := range r.gauges {
		entries = append(entries, entry{name, fmt.Sprintf("gauge   %-52s %d", name, g.Value())})
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		u := r.histUnits[name]
		entries = append(entries, entry{name, fmt.Sprintf(
			"hist    %-52s count=%d min=%s p50=%s p95=%s p99=%s max=%s mean=%s",
			name, s.Count,
			formatSample(s.Min, u), formatSample(s.P50, u), formatSample(s.P95, u),
			formatSample(s.P99, u), formatSample(s.Max, u), formatSample(s.Mean, u))})
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		fmt.Fprintln(w, e.line)
	}
}

// formatSample renders one histogram sample in the histogram's unit.
func formatSample(v int64, u Unit) string {
	switch u {
	case UnitBytes:
		return formatBytes(v)
	case UnitCount:
		return strconv.FormatInt(v, 10)
	default:
		return time.Duration(v).String()
	}
}

// formatBytes renders a byte count with a binary-prefix suffix.
func formatBytes(v int64) string {
	const (
		kib = int64(1) << 10
		mib = int64(1) << 20
		gib = int64(1) << 30
	)
	switch {
	case v >= gib:
		return fmt.Sprintf("%.1fGiB", float64(v)/float64(gib))
	case v >= mib:
		return fmt.Sprintf("%.1fMiB", float64(v)/float64(mib))
	case v >= kib:
		return fmt.Sprintf("%.1fKiB", float64(v)/float64(kib))
	default:
		return fmt.Sprintf("%dB", v)
	}
}
