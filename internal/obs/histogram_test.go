package obs

import (
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Count() != 0 {
		t.Fatalf("empty count = %d", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, v)
		}
	}
	s := h.Snapshot()
	if s.Min != 0 || s.Max != 0 || s.Mean != 0 || s.Sum != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := &Histogram{}
	h.Observe(1234)
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if v := h.Quantile(q); v != 1234 {
			t.Errorf("Quantile(%v) = %d, want 1234 (single sample)", q, v)
		}
	}
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 1234 || s.Max != 1234 || s.Mean != 1234 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Zero goes to bucket 0; 1 to bucket 1 ([1,1]); 2,3 to bucket 2; etc.
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41},
	}
	for _, c := range cases {
		h := &Histogram{}
		h.Observe(c.v)
		s := h.Snapshot()
		if s.Buckets[c.bucket] != 1 {
			t.Errorf("Observe(%d): bucket %d empty (buckets %v...)", c.v, c.bucket, s.Buckets[:12])
		}
		lo, hi := bucketBounds(c.bucket)
		if c.v < lo || c.v > hi {
			t.Errorf("bucketBounds(%d) = [%d, %d] does not contain %d", c.bucket, lo, hi, c.v)
		}
	}
}

func TestHistogramQuantilesClampedByMinMax(t *testing.T) {
	h := &Histogram{}
	// Two samples in the same bucket [1024, 2047].
	h.Observe(1500)
	h.Observe(1600)
	if v := h.Quantile(0); v != 1500 {
		t.Errorf("q0 = %d, want min 1500", v)
	}
	if v := h.Quantile(1); v != 1600 {
		t.Errorf("q1 = %d, want max 1600", v)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := h.Quantile(q)
		if v < 1500 || v > 1600 {
			t.Errorf("Quantile(%v) = %d outside [min, max]", q, v)
		}
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 100)
	}
	s := h.Snapshot()
	if !(s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("quantiles not ordered: p50=%d p95=%d p99=%d max=%d", s.P50, s.P95, s.P99, s.Max)
	}
	// p50 of 100..100000 uniform-ish over log buckets: must be in the
	// right half-order-of-magnitude at least.
	if s.P50 < 10000 || s.P50 > 100000 {
		t.Errorf("p50 = %d, grossly off for samples 100..100000", s.P50)
	}
	if s.Max != 100000 {
		t.Errorf("max = %d, want 100000", s.Max)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	a.Observe(10)
	a.Observe(20)
	b.Observe(5)
	b.Observe(40000)
	a.Merge(b)
	s := a.Snapshot()
	if s.Count != 4 || s.Min != 5 || s.Max != 40000 || s.Sum != 40035 {
		t.Fatalf("merged snapshot = %+v", s)
	}
	// Merging an empty histogram changes nothing.
	a.Merge(&Histogram{})
	if a.Count() != 4 {
		t.Errorf("merge of empty changed count to %d", a.Count())
	}
	// Nil receivers and arguments are no-ops.
	var nilH *Histogram
	nilH.Merge(a)
	a.Merge(nilH)
	if a.Count() != 4 {
		t.Errorf("nil merge changed count to %d", a.Count())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := &Histogram{}
	h.ObserveDuration(-5 * time.Nanosecond)
	if v := h.Quantile(1); v != 0 {
		t.Errorf("negative sample recorded as %d, want clamped 0", v)
	}
}
