package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mpi.sends").Add(3)
	r.Counter("mpi.sends").Inc()
	if v := r.Counter("mpi.sends").Value(); v != 4 {
		t.Errorf("counter = %d, want 4", v)
	}
	r.SetGauge("sci.retries", 7)
	if v := r.Gauge("sci.retries").Value(); v != 7 {
		t.Errorf("gauge = %d, want 7", v)
	}
	r.Gauge("flow.active.max").Max(3)
	r.Gauge("flow.active.max").Max(9)
	r.Gauge("flow.active.max").Max(5) // must not lower a high-water mark
	if v := r.Gauge("flow.active.max").Value(); v != 9 {
		t.Errorf("high-water gauge = %d, want 9", v)
	}
	r.Histogram("sci.pio.ns").ObserveDuration(120 * time.Nanosecond)
	if c := r.Histogram("sci.pio.ns").Count(); c != 1 {
		t.Errorf("hist count = %d, want 1", c)
	}
}

func TestRegistryName(t *testing.T) {
	if got := Name("sci.bytes"); got != "sci.bytes" {
		t.Errorf("Name no labels = %q", got)
	}
	if got := Name("sci.bytes", "node", "3"); got != "sci.bytes{node=3}" {
		t.Errorf("Name = %q", got)
	}
	if got := Name("mpi.send", "rank", "0", "path", "rdv"); got != "mpi.send{rank=0,path=rdv}" {
		t.Errorf("Name = %q", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Counter("x").Inc()
	r.Gauge("y").Set(2)
	r.Gauge("y").Max(2)
	r.SetGauge("y", 3)
	r.Histogram("z").Observe(4)
	r.Histogram("z").ObserveDuration(time.Second)
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 || r.Histogram("z").Count() != 0 {
		t.Error("nil registry collectors must read zero")
	}
	var buf bytes.Buffer
	r.WriteText(&buf) // must not panic
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote %q", buf.String())
	}
}

func TestWriteTextSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.counter").Add(2)
	r.SetGauge("a.gauge", 5)
	r.Histogram("c.hist.ns").ObserveDuration(time.Microsecond)
	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "a.gauge") ||
		!strings.Contains(lines[1], "b.counter") ||
		!strings.Contains(lines[2], "c.hist.ns") {
		t.Errorf("not sorted by name:\n%s", out)
	}
	if !strings.Contains(lines[2], "count=1") || !strings.Contains(lines[2], "p50=1µs") {
		t.Errorf("histogram line missing fields: %s", lines[2])
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Max(int64(i))
				r.Histogram("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c").Value(); v != 4000 {
		t.Errorf("counter = %d, want 4000", v)
	}
	if v := r.Gauge("g").Value(); v != 499 {
		t.Errorf("gauge max = %d, want 499", v)
	}
	if c := r.Histogram("h").Count(); c != 4000 {
		t.Errorf("hist count = %d, want 4000", c)
	}
}

func TestHistogramUnits(t *testing.T) {
	r := NewRegistry()
	r.Histogram("op.ns").Observe(int64(1500 * time.Microsecond))
	r.HistogramUnit("op.bytes", UnitBytes).Observe(4096)
	r.HistogramUnit("op.staged", UnitCount).Observe(37)
	// First use wins: a later lookup with a different unit must not retag.
	r.HistogramUnit("op.bytes", UnitDuration).Observe(2 * 1024 * 1024)
	if u := r.HistogramUnitOf("op.bytes"); u != UnitBytes {
		t.Errorf("op.bytes unit = %v, want bytes (first use wins)", u)
	}
	if u := r.HistogramUnitOf("op.ns"); u != UnitDuration {
		t.Errorf("plain Histogram unit = %v, want duration", u)
	}

	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"1.5ms", "4.0KiB", "2.0MiB", "37"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "4.096µs") || strings.Contains(out, "37ns") {
		t.Errorf("byte/count samples rendered as durations:\n%s", out)
	}
}
