package flight

import (
	"fmt"
	"io"
	"time"
)

// Human rendering of dumps and reports, shared by cmd/postmortem and the
// tests so the root-cause text asserted in CI is exactly what the tool
// prints.

// FormatEvent renders one event as a short human-readable line (no
// timestamp — callers prepend it).
func FormatEvent(e DumpEvent) string {
	switch e.KindOf() {
	case KRankNode:
		return fmt.Sprintf("rank%d runs on node%d", e.A, e.B)
	case KSendPost:
		proto := [...]string{"self", "short", "eager", "rendezvous"}
		p := "?"
		if e.D >= 0 && int(e.D) < len(proto) {
			p = proto[e.D]
		}
		return fmt.Sprintf("send -> rank%d tag %d (%dB via %s)", e.A, e.B, e.C, p)
	case KRecvPost:
		src := fmt.Sprintf("rank%d", e.A)
		if e.A < 0 {
			src = "any"
		}
		return fmt.Sprintf("recv posted <- %s tag %d (%dB)", src, e.B, e.C)
	case KRecvMatch:
		return fmt.Sprintf("recv matched <- rank%d tag %d (%dB)", e.A, e.B, e.C)
	case KRdvStart:
		return fmt.Sprintf("rendezvous %x -> rank%d started (%dB)", e.B, e.A, e.C)
	case KRdvCTS:
		return fmt.Sprintf("rendezvous %x <- rank%d clear-to-send (mode %d)", e.B, e.A, e.C)
	case KRdvChunk:
		return fmt.Sprintf("rendezvous %x <- rank%d chunk %dB (%dB so far)", e.B, e.A, e.C, e.D)
	case KRdvDone:
		return fmt.Sprintf("rendezvous %x with rank%d complete (%dB)", e.B, e.A, e.C)
	case KRdvCancel:
		return fmt.Sprintf("rendezvous %x with rank%d cancelled after %dB", e.B, e.A, e.C)
	case KPathChosen:
		names := [...]string{"pio-ff", "dma-staged", "dma-sg", "generic", "pio-stream", "dma-contig"}
		p := "?"
		if e.A >= 0 && int(e.A) < len(names) {
			p = names[e.A]
		}
		return fmt.Sprintf("deposit path %s (%dB)", p, e.B)
	case KPacketDrop:
		reasons := map[int64]string{DropRevoked: "peer revoked", DropNodeDown: "node down", DropDuplicate: "duplicate"}
		return fmt.Sprintf("packet to/from rank%d dropped (%s)", e.B, reasons[e.C])
	case KFenceEnter:
		return fmt.Sprintf("fence round %d on window %d entered", e.B, e.A)
	case KFenceExit:
		return fmt.Sprintf("fence round %d on window %d complete (%d peers)", e.B, e.A, e.C)
	case KPut:
		mode := "emulated"
		if e.D == 1 {
			mode = "direct"
		}
		return fmt.Sprintf("put -> rank%d %dB on window %d (%s)", e.A, e.B, e.C, mode)
	case KPutStage:
		return fmt.Sprintf("staged key %d seq %d on shard %d", e.A, e.B, e.C)
	case KEpochStamp:
		return fmt.Sprintf("stamped epoch %d on shard %d at rank%d", e.B, e.A, e.C)
	case KCommit:
		return fmt.Sprintf("committed epoch %d (%d writes)", e.A, e.B)
	case KReplay:
		return fmt.Sprintf("replayed key %d seq %d on shard %d", e.A, e.B, e.C)
	case KWriteLost:
		return fmt.Sprintf("LOST WRITE key %d: committed seq %d, store serves %d", e.A, e.B, e.C)
	case KSuspect:
		return fmt.Sprintf("rank%d suspected", e.A)
	case KRevoke:
		return fmt.Sprintf("rank%d revoked", e.A)
	case KShrinkDeposit:
		return fmt.Sprintf("shrink %x: deposited liveness snapshot (%d ranks, digest %x)", e.A, e.B, e.C)
	case KShrinkAdopt:
		return fmt.Sprintf("shrink %x: adopted decision (%d dead, digest %x)", e.A, e.B, e.C)
	case KNodeDown:
		return fmt.Sprintf("node%d crashed", e.A)
	case KNodeUp:
		return fmt.Sprintf("node%d restored", e.A)
	case KSegRevoked:
		return fmt.Sprintf("segment %d of node%d revoked", e.B, e.A)
	case KDupInject:
		return fmt.Sprintf("duplicate delivery injected towards rank%d (seq %d)", e.B, e.C)
	case KFault:
		return fmt.Sprintf("fault injected: kind %d from %d to %d", e.A, e.B, e.C)
	case KError:
		peer := fmt.Sprintf("rank%d", e.B)
		if e.B < 0 {
			peer = "collective"
		}
		return fmt.Sprintf("ERROR: %s failed (%s)", Op(e.A), peer)
	}
	return fmt.Sprintf("%s a=%d b=%d c=%d d=%d", e.Kind, e.A, e.B, e.C, e.D)
}

// WriteReport prints the ranked anomaly report.
func WriteReport(w io.Writer, d *Dump, rep *Report) {
	if d.Reason != "" {
		fmt.Fprintf(w, "dump reason: %s\n", d.Reason)
	}
	fmt.Fprintf(w, "%d actors, %d events retained (%d evicted by the rings)\n",
		len(d.Actors), d.TotalEvents(), d.TotalDropped())
	if len(rep.Anomalies) == 0 {
		fmt.Fprintln(w, "no invariant violations found")
		return
	}
	fmt.Fprintf(w, "\ninvariant report (%d anomalies, most severe first):\n", len(rep.Anomalies))
	for i, an := range rep.Anomalies {
		actor := an.Actor
		if actor == "" {
			actor = "-"
		}
		fmt.Fprintf(w, "%2d. [sev %3d] %-20s %-8s %s\n", i+1, an.Severity, an.Check, actor, an.Summary)
	}
}

// WriteChain prints the causal chain terminating at the failure, one
// event per line with virtual time and Lamport clock.
func WriteChain(w io.Writer, d *Dump, rep *Report) {
	if len(rep.Chain) == 0 {
		return
	}
	fmt.Fprintf(w, "\ncausal chain to the failure (%d steps):\n", len(rep.Chain))
	for _, ref := range rep.Chain {
		ad := d.Actor(ref.Actor)
		if ad == nil || ref.Index >= len(ad.Events) {
			continue
		}
		e := ad.Events[ref.Index]
		clock := int64(0)
		if cs := rep.Clocks[ref.Actor]; ref.Index < len(cs) {
			clock = cs[ref.Index]
		}
		fmt.Fprintf(w, "  %12v  L%-5d %-8s %s\n", time.Duration(e.At), clock, ref.Actor, FormatEvent(e))
	}
}

// WriteTimelines prints the tail of every actor's window (last `tail`
// events; everything when tail <= 0).
func WriteTimelines(w io.Writer, d *Dump, tail int) {
	for _, ad := range d.Actors {
		evs := ad.Events
		if tail > 0 && len(evs) > tail {
			evs = evs[len(evs)-tail:]
		}
		fmt.Fprintf(w, "\n%s (%d events", ad.Actor, len(ad.Events))
		if ad.Dropped > 0 {
			fmt.Fprintf(w, ", %d evicted", ad.Dropped)
		}
		fmt.Fprintln(w, "):")
		for _, e := range evs {
			fmt.Fprintf(w, "  %12v  %s\n", time.Duration(e.At), FormatEvent(e))
		}
	}
}
