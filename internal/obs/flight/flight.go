// Package flight is the always-on flight recorder of the runtime: every
// actor (rank, device, node, fault plan) records typed protocol events —
// send/recv match keys, rendezvous chunk progress, fence and epoch
// transitions, path-policy decisions, shrink-agreement rounds, rmem
// stage/commit/replay, fault injections — as fixed-size structs into a
// per-actor ring buffer of bounded capacity. Recording is a mutex lock and
// a handful of integer stores (zero allocations), so the recorder stays on
// next to the 0-alloc hot paths; the ring bounds memory no matter how long
// a run lasts.
//
// When a checked operation surfaces a typed error, Ring.Fail snapshots the
// whole recorder (the last-N window of every actor) to a deterministic
// JSON dump — first failure wins, later failures only record their KError
// event. Analyze (analyze.go) turns a dump into a happens-before graph
// with Lamport clocks and a ranked anomaly report; cmd/postmortem renders
// both for humans.
package flight

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a recorded event. The A..D payload words are
// kind-specific; the table below is the single source of truth.
type Kind uint8

const (
	KNone Kind = iota
	// KRankNode maps an actor to the topology: A=world rank, B=node.
	// Recorded once per rank at world construction.
	KRankNode
	// KSendPost: a send entered the runtime. A=dst world rank, B=tag,
	// C=bytes, D=protocol (0 self, 1 short, 2 eager, 3 rendezvous).
	KSendPost
	// KRecvPost: a receive was posted. A=src world rank (-1 any), B=tag,
	// C=buffer capacity in bytes.
	KRecvPost
	// KRecvMatch: an inbound envelope matched a posted receive.
	// A=src world rank, B=tag, C=bytes, D=envelope kind code.
	KRecvMatch
	// KRdvStart (sender): rendezvous request sent. A=peer, B=reqID, C=bytes.
	KRdvStart
	// KRdvCTS (receiver): clear-to-send issued. A=peer, B=reqID, C=mode.
	KRdvCTS
	// KRdvChunk (receiver): one chunk landed. A=peer, B=reqID, C=chunk
	// bytes, D=bytes received so far.
	KRdvChunk
	// KRdvDone (both sides): transfer complete. A=peer, B=reqID, C=bytes.
	KRdvDone
	// KRdvCancel: transfer torn down. A=peer, B=reqID, C=bytes received.
	KRdvCancel
	// KPathChosen: deposit path decision for one chunk. A=path code
	// (see Path*), B=chunk bytes.
	KPathChosen
	// KPacketDrop: an envelope was dropped in flight. A=envelope kind
	// code, B=peer, C=reason (1 revoked, 2 node down, 3 duplicate).
	KPacketDrop
	// KFenceEnter / KFenceExit: a checked fence round. A=window id,
	// B=round; KFenceExit C=peers heard from.
	KFenceEnter
	KFenceExit
	// KPut: a one-sided put left the origin. A=target rank, B=bytes,
	// C=window id, D=1 direct view, 0 emulated.
	KPut
	// KPutStage (rmem): a write was staged on both replicas.
	// A=key, B=seq, C=shard.
	KPutStage
	// KEpochStamp (rmem): an epoch stamp was accumulated on a replica.
	// A=shard, B=epoch, C=target rank.
	KEpochStamp
	// KCommit (rmem): a commit round sealed. A=epoch, B=writes sealed.
	KCommit
	// KReplay (rmem): a pending write was replayed during recovery.
	// A=key, B=seq, C=shard.
	KReplay
	// KWriteLost (rmem): verification found a committed write missing.
	// A=key, B=committed seq, C=seq actually served.
	KWriteLost
	// KSuspect: a rank transitioned to suspected. A=rank.
	KSuspect
	// KRevoke: a rank was revoked from the world. A=rank.
	KRevoke
	// KShrinkDeposit: this rank deposited its liveness snapshot into a
	// shrink agreement. A=agreement id, B=snapshot size, C=digest.
	KShrinkDeposit
	// KShrinkAdopt: this rank adopted the sealed shrink decision.
	// A=agreement id, B=dead count, C=digest of the dead set.
	KShrinkAdopt
	// KNodeDown / KNodeUp: an interconnect node crashed / was restored.
	// A=node.
	KNodeDown
	KNodeUp
	// KSegRevoked: an exported segment was revoked. A=owner node, B=segment.
	KSegRevoked
	// KDupInject: the fault plan injected a duplicate delivery of an
	// envelope. A=envelope kind code, B=dst, C=sequence number.
	KDupInject
	// KFault: the fault plan injected an error. A=fault kind code,
	// B=from, C=to, D=retry attempt (when drawn on a retry path).
	KFault
	// KError: a checked operation surfaced a typed error. A=op code
	// (see Op), B=peer rank (-1 collective).
	KError

	kindCount
)

var kindNames = [kindCount]string{
	KNone:          "none",
	KRankNode:      "rank-node",
	KSendPost:      "send-post",
	KRecvPost:      "recv-post",
	KRecvMatch:     "recv-match",
	KRdvStart:      "rdv-start",
	KRdvCTS:        "rdv-cts",
	KRdvChunk:      "rdv-chunk",
	KRdvDone:       "rdv-done",
	KRdvCancel:     "rdv-cancel",
	KPathChosen:    "path-chosen",
	KPacketDrop:    "packet-drop",
	KFenceEnter:    "fence-enter",
	KFenceExit:     "fence-exit",
	KPut:           "put",
	KPutStage:      "put-stage",
	KEpochStamp:    "epoch-stamp",
	KCommit:        "commit",
	KReplay:        "replay",
	KWriteLost:     "write-lost",
	KSuspect:       "suspect",
	KRevoke:        "revoke",
	KShrinkDeposit: "shrink-deposit",
	KShrinkAdopt:   "shrink-adopt",
	KNodeDown:      "node-down",
	KNodeUp:        "node-up",
	KSegRevoked:    "seg-revoked",
	KDupInject:     "dup-inject",
	KFault:         "fault",
	KError:         "error",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindFromName inverts Kind.String; unknown names map to KNone.
func KindFromName(name string) Kind {
	for k, n := range kindNames {
		if n == name {
			return Kind(k)
		}
	}
	return KNone
}

// Op identifies the checked operation that surfaced a typed error (the
// A word of a KError event).
type Op int8

const (
	OpNone Op = iota
	OpSend
	OpRecv
	OpFence
	OpLock
	OpShrink
	OpPut
	OpGet
	OpAccumulate
	OpCommit
	OpRecover
)

var opNames = [...]string{
	OpNone: "none", OpSend: "send", OpRecv: "recv", OpFence: "fence",
	OpLock: "lock", OpShrink: "shrink", OpPut: "put", OpGet: "get",
	OpAccumulate: "accumulate", OpCommit: "commit", OpRecover: "recover",
}

func (o Op) String() string {
	if int(o) < len(opNames) && o >= 0 {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Deposit-path codes for KPathChosen (mirrors the mpi path policy plus the
// contiguous fast paths).
const (
	PathFF       = 0 // direct_pack_ff PIO deposit
	PathStaged   = 1 // staged DMA
	PathSG       = 2 // scatter-gather DMA
	PathGeneric  = 3 // generic pack + PIO
	PathPIOCont  = 4 // contiguous PIO stream
	PathDMACont  = 5 // contiguous DMA
)

// Packet-drop reasons for KPacketDrop.
const (
	DropRevoked   = 1
	DropNodeDown  = 2
	DropDuplicate = 3
)

// Event is one recorded protocol event: the virtual timestamp, a global
// sequence number (total order over all actors), the kind and four
// kind-specific payload words. Fixed-size by design — rings never allocate
// after construction.
type Event struct {
	At   time.Duration
	Seq  uint64
	Kind Kind
	A    int64
	B    int64
	C    int64
	D    int64
}

// Recorder owns the per-actor rings and the dump-on-failure trigger. The
// zero recorder is not usable; a nil *Recorder is: Actor returns a nil
// ring whose Record/Fail are no-ops, so call sites never branch.
type Recorder struct {
	capacity int
	seq      atomic.Uint64

	mu     sync.Mutex
	byName map[string]*Ring

	dumpMu   sync.Mutex
	dumpPath string
	sink     func(*Dump)
	dumped   bool
	dumpErr  error
	reason   string
}

// New returns a recorder whose per-actor rings retain the last perActorCap
// events (512 when <= 0).
func New(perActorCap int) *Recorder {
	if perActorCap <= 0 {
		perActorCap = 512
	}
	return &Recorder{capacity: perActorCap, byName: make(map[string]*Ring)}
}

// Actor returns the named actor's ring, creating it on first use. Safe on
// a nil recorder (returns a nil ring).
func (r *Recorder) Actor(name string) *Ring {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rg, ok := r.byName[name]; ok {
		return rg
	}
	rg := &Ring{rec: r, actor: name, buf: make([]Event, r.capacity)}
	r.byName[name] = rg
	return rg
}

// SetDumpPath arms dump-on-failure: the first Fail writes the snapshot as
// JSON to path.
func (r *Recorder) SetDumpPath(path string) {
	if r == nil {
		return
	}
	r.dumpMu.Lock()
	r.dumpPath = path
	r.dumpMu.Unlock()
}

// SetDumpSink arms dump-on-failure with an in-process consumer (tests,
// embedding tools). Path and sink may both be set; both fire.
func (r *Recorder) SetDumpSink(fn func(*Dump)) {
	if r == nil {
		return
	}
	r.dumpMu.Lock()
	r.sink = fn
	r.dumpMu.Unlock()
}

// Dumped reports whether a failure dump has fired.
func (r *Recorder) Dumped() bool {
	if r == nil {
		return false
	}
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	return r.dumped
}

// DumpErr returns the error of the last file write attempt, if any.
func (r *Recorder) DumpErr() error {
	if r == nil {
		return nil
	}
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	return r.dumpErr
}

// Reason returns the reason string of the failure dump ("" before one).
func (r *Recorder) Reason() string {
	if r == nil {
		return ""
	}
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	return r.reason
}

// ForceDump snapshots unconditionally (end-of-run dumps, demos) and
// delivers to the armed path/sink. It marks the recorder dumped so a later
// Fail does not overwrite it.
func (r *Recorder) ForceDump(reason string) *Dump {
	if r == nil {
		return nil
	}
	r.dumpMu.Lock()
	r.dumped = true
	r.reason = reason
	path, sink := r.dumpPath, r.sink
	r.dumpMu.Unlock()
	d := r.Snapshot(reason)
	r.deliver(d, path, sink)
	return d
}

// failure is the dump-on-failure trigger: first failure wins, later
// failures only leave their KError event in the ring.
func (r *Recorder) failure(at time.Duration, actor string, op Op, err error) {
	reason := fmt.Sprintf("%s: %s failed at %v: %v", actor, op, at, err)
	r.dumpMu.Lock()
	if r.dumped {
		r.dumpMu.Unlock()
		return
	}
	r.dumped = true
	r.reason = reason
	path, sink := r.dumpPath, r.sink
	r.dumpMu.Unlock()
	d := r.Snapshot(reason)
	r.deliver(d, path, sink)
}

func (r *Recorder) deliver(d *Dump, path string, sink func(*Dump)) {
	if sink != nil {
		sink(d)
	}
	if path != "" {
		err := writeDumpFile(path, d)
		r.dumpMu.Lock()
		r.dumpErr = err
		r.dumpMu.Unlock()
	}
}

func writeDumpFile(path string, d *Dump) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Snapshot captures every actor's retained window, actors sorted by name
// so the encoding is deterministic.
func (r *Recorder) Snapshot(reason string) *Dump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	rings := make([]*Ring, 0, len(r.byName))
	for _, rg := range r.byName {
		rings = append(rings, rg)
	}
	r.mu.Unlock()
	sort.Slice(rings, func(i, j int) bool { return rings[i].actor < rings[j].actor })
	d := &Dump{Reason: reason, Cap: r.capacity}
	for _, rg := range rings {
		evs, dropped := rg.Window()
		ad := ActorDump{Actor: rg.actor, Dropped: dropped, Events: make([]DumpEvent, len(evs))}
		for i, e := range evs {
			ad.Events[i] = DumpEvent{
				At: int64(e.At), Seq: e.Seq, Kind: e.Kind.String(),
				A: e.A, B: e.B, C: e.C, D: e.D,
			}
		}
		d.Actors = append(d.Actors, ad)
	}
	return d
}

// Ring is one actor's fixed-capacity event window. A nil ring ignores all
// calls, so unobserved runs pay a single nil check.
type Ring struct {
	rec   *Recorder
	actor string

	mu  sync.Mutex
	buf []Event
	n   uint64 // events ever recorded; write cursor is n % len(buf)
}

// Actor returns the ring's actor name.
func (rg *Ring) Actor() string {
	if rg == nil {
		return ""
	}
	return rg.actor
}

// Record appends one event. Zero allocations; safe from any goroutine and
// on a nil ring.
func (rg *Ring) Record(at time.Duration, k Kind, a, b, c, d int64) {
	if rg == nil {
		return
	}
	seq := rg.rec.seq.Add(1)
	rg.mu.Lock()
	e := &rg.buf[rg.n%uint64(len(rg.buf))]
	e.At, e.Seq, e.Kind, e.A, e.B, e.C, e.D = at, seq, k, a, b, c, d
	rg.n++
	rg.mu.Unlock()
}

// Fail records a KError event and triggers the recorder's dump-on-failure
// (first failure wins). peer is the remote world rank, -1 for collectives.
func (rg *Ring) Fail(at time.Duration, op Op, peer int, err error) {
	if rg == nil {
		return
	}
	rg.Record(at, KError, int64(op), int64(peer), 0, 0)
	rg.rec.failure(at, rg.actor, op, err)
}

// Events returns the retained window oldest-first.
func (rg *Ring) Events() []Event {
	evs, _ := rg.Window()
	return evs
}

// Window returns the retained events oldest-first plus the count of events
// evicted by the ring.
func (rg *Ring) Window() ([]Event, uint64) {
	if rg == nil {
		return nil, 0
	}
	rg.mu.Lock()
	defer rg.mu.Unlock()
	capacity := uint64(len(rg.buf))
	if rg.n == 0 {
		return nil, 0
	}
	if rg.n <= capacity {
		out := make([]Event, rg.n)
		copy(out, rg.buf[:rg.n])
		return out, 0
	}
	start := int(rg.n % capacity)
	out := make([]Event, 0, capacity)
	out = append(out, rg.buf[start:]...)
	out = append(out, rg.buf[:start]...)
	return out, rg.n - capacity
}

// Dropped returns how many events the ring has evicted.
func (rg *Ring) Dropped() uint64 {
	if rg == nil {
		return 0
	}
	rg.mu.Lock()
	defer rg.mu.Unlock()
	if c := uint64(len(rg.buf)); rg.n > c {
		return rg.n - c
	}
	return 0
}

// Len returns the number of retained events.
func (rg *Ring) Len() int {
	if rg == nil {
		return 0
	}
	rg.mu.Lock()
	defer rg.mu.Unlock()
	if c := len(rg.buf); rg.n > uint64(c) {
		return c
	}
	return int(rg.n)
}

// DigestInts returns an order-insensitive-free (FNV-1a over the sorted
// sequence) digest of a small int set, used to compare shrink-agreement
// decisions across ranks without shipping the sets.
func DigestInts(xs []int) int64 {
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	h := uint64(1469598103934665603)
	for _, x := range sorted {
		for s := 0; s < 64; s += 8 {
			h ^= uint64(uint8(uint64(x) >> s))
			h *= 1099511628211
		}
	}
	return int64(h & 0x7fffffffffffffff)
}

// DigestString digests a string the same way (agreement keys).
func DigestString(s string) int64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}
