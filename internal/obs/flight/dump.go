package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Dump is a recorder snapshot: the last-N window of every actor, actors
// sorted by name. The encoding contains only virtual times and values
// derived from the simulation, so for a fixed fault seed two runs produce
// byte-identical dumps (the determinism tests pin this).
type Dump struct {
	Reason string      `json:"reason,omitempty"`
	Cap    int         `json:"cap"`
	Actors []ActorDump `json:"actors"`
}

// ActorDump is one actor's retained window.
type ActorDump struct {
	Actor   string      `json:"actor"`
	Dropped uint64      `json:"dropped,omitempty"`
	Events  []DumpEvent `json:"events"`
}

// DumpEvent is the JSON form of Event. At is virtual nanoseconds.
type DumpEvent struct {
	At   int64  `json:"at"`
	Seq  uint64 `json:"seq"`
	Kind string `json:"k"`
	A    int64  `json:"a,omitempty"`
	B    int64  `json:"b,omitempty"`
	C    int64  `json:"c,omitempty"`
	D    int64  `json:"d,omitempty"`
}

// KindOf decodes the event kind name.
func (e DumpEvent) KindOf() Kind { return KindFromName(e.Kind) }

// Time returns the virtual timestamp as a duration.
func (e DumpEvent) Time() time.Duration { return time.Duration(e.At) }

// WriteJSON encodes the dump deterministically (struct field order, sorted
// actors, indented for human diffing).
func (d *Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// Actor returns the named actor's window, nil when absent.
func (d *Dump) Actor(name string) *ActorDump {
	for i := range d.Actors {
		if d.Actors[i].Actor == name {
			return &d.Actors[i]
		}
	}
	return nil
}

// TotalEvents counts retained events across all actors.
func (d *Dump) TotalEvents() int {
	n := 0
	for i := range d.Actors {
		n += len(d.Actors[i].Events)
	}
	return n
}

// TotalDropped sums ring evictions across all actors.
func (d *Dump) TotalDropped() uint64 {
	var n uint64
	for i := range d.Actors {
		n += d.Actors[i].Dropped
	}
	return n
}

// ReadDump decodes a dump written by WriteJSON.
func ReadDump(r io.Reader) (*Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("flight: decoding dump: %w", err)
	}
	return &d, nil
}

// ReadDumpFile reads a dump from path ("-" for stdin).
func ReadDumpFile(path string) (*Dump, error) {
	if path == "-" {
		return ReadDump(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDump(f)
}
