package flight

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Concurrency stress for the recorder: many writers per ring, writers
// across rings sharing the global sequence, concurrent snapshot readers,
// and a mid-flight failure dump. Run under -race in CI.

func TestFlightConcurrentStress(t *testing.T) {
	const (
		writers       = 8
		eventsPer     = 400
		snapshotPolls = 50
	)
	rec := New(64)
	rec.SetDumpSink(func(*Dump) {}) // exercise the sink path under contention
	shared := rec.Actor("shared")

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := rec.Actor(fmt.Sprintf("rank%d", w))
			for i := 0; i < eventsPer; i++ {
				at := time.Duration(i) * time.Microsecond
				shared.Record(at, KSendPost, int64(w), int64(i), 64, 1)
				own.Record(at, KRecvMatch, int64(w), int64(i), 64, 2)
				if i == eventsPer/2 {
					own.Fail(at, OpRecv, w, errors.New("stress failure"))
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < snapshotPolls; i++ {
			d := rec.Snapshot("poll")
			_ = d.TotalEvents()
			_ = d.TotalDropped()
			_, _ = shared.Window()
			_ = shared.Dropped()
			_ = shared.Len()
			_ = rec.Dumped()
			_ = rec.Reason()
		}
	}()
	wg.Wait()

	if !rec.Dumped() {
		t.Fatal("no dump fired despite Fail calls")
	}
	// Every ring retained exactly its capacity and accounted for the rest.
	for w := 0; w < writers; w++ {
		rg := rec.Actor(fmt.Sprintf("rank%d", w))
		// eventsPer records + 1 KError.
		if got := uint64(rg.Len()) + rg.Dropped(); got != eventsPer+1 {
			t.Errorf("rank%d: Len+Dropped = %d, want %d", w, got, eventsPer+1)
		}
	}
	if got := uint64(shared.Len()) + shared.Dropped(); got != writers*eventsPer {
		t.Errorf("shared ring: Len+Dropped = %d, want %d", got, writers*eventsPer)
	}
	// Seqs within one ring are strictly increasing (writers serialize on
	// the ring mutex after drawing from the global counter... order within
	// the buffer is commit order, so windows stay sorted by seq only per
	// committed position; just check they are all distinct and non-zero).
	seen := make(map[uint64]bool)
	for w := 0; w < writers; w++ {
		for _, e := range rec.Actor(fmt.Sprintf("rank%d", w)).Events() {
			if e.Seq == 0 || seen[e.Seq] {
				t.Fatalf("duplicate or zero seq %d", e.Seq)
			}
			seen[e.Seq] = true
		}
	}
}
