package flight

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The post-mortem analyzer. Analyze matches the per-actor windows of a
// dump into a happens-before graph (send↔recv match keys, rendezvous
// reqIDs, fence rounds, put→delivery), assigns Lamport clocks, and runs
// the invariant checkers over the graph to produce a ranked anomaly
// report. Everything is derived from the dump alone so the analysis is as
// reproducible as the dump itself.

// EventRef names one event inside a dump: the actor and the index into
// that actor's Events slice.
type EventRef struct {
	Actor string `json:"actor"`
	Index int    `json:"index"`
}

// Anomaly is one invariant violation, ranked by Severity (higher is
// worse; 100 means the checker identified an injected fault as the root
// cause). Actor is the blamed actor ("" when no single actor is at
// fault).
type Anomaly struct {
	Check    string     `json:"check"`
	Severity int        `json:"severity"`
	Actor    string     `json:"actor,omitempty"`
	Summary  string     `json:"summary"`
	Evidence []EventRef `json:"evidence,omitempty"`
}

// Report is the analyzer's output: anomalies ranked most-severe first,
// per-event Lamport clocks (aligned with the dump's Events slices), and
// the causal chain terminating at the first recorded failure.
type Report struct {
	Anomalies []Anomaly
	// Clocks[actor][i] is the Lamport clock of d.Actor(actor).Events[i].
	Clocks map[string][]int64
	// Chain walks the critical happens-before path backwards from the
	// failure event, oldest first.
	Chain []EventRef
}

// node is one dump event plus its graph context.
type node struct {
	actor string
	rank  int // world rank parsed from the actor name, -1 otherwise
	idx   int
	ev    DumpEvent
	k     Kind
	clock int64
	prev  *node   // previous event of the same actor
	preds []*node // cross-actor happens-before predecessors
}

func (n *node) ref() EventRef { return EventRef{Actor: n.actor, Index: n.idx} }

type analysis struct {
	d       *Dump
	nodes   []*node // global (At, Seq) order
	byActor map[string][]*node
	// rank topology (from the "topology" meta ring and actor names)
	actorOfRank map[int]string
	nodeOfRank  map[int]int64
	nodeDownAt  map[int64]int64 // node id -> first crash time (virtual ns)
}

// Analyze builds the happens-before graph of a dump and runs every
// invariant checker.
func Analyze(d *Dump) *Report {
	a := build(d)
	a.link()
	a.clocks()
	rep := &Report{Clocks: make(map[string][]int64, len(a.byActor))}
	for actor, ns := range a.byActor {
		cs := make([]int64, len(ns))
		for i, n := range ns {
			cs[i] = n.clock
		}
		rep.Clocks[actor] = cs
	}
	rep.Anomalies = append(rep.Anomalies, a.checkFenceStall()...)
	rep.Anomalies = append(rep.Anomalies, a.checkAgreement()...)
	rep.Anomalies = append(rep.Anomalies, a.checkRendezvous()...)
	rep.Anomalies = append(rep.Anomalies, a.checkEpochMonotonic()...)
	rep.Anomalies = append(rep.Anomalies, a.checkDurability()...)
	rep.Anomalies = append(rep.Anomalies, a.checkUnmatchedSends()...)
	sort.SliceStable(rep.Anomalies, func(i, j int) bool {
		if rep.Anomalies[i].Severity != rep.Anomalies[j].Severity {
			return rep.Anomalies[i].Severity > rep.Anomalies[j].Severity
		}
		return rep.Anomalies[i].Summary < rep.Anomalies[j].Summary
	})
	rep.Chain = a.chain()
	return rep
}

func rankOfActor(actor string) int {
	if !strings.HasPrefix(actor, "rank") {
		return -1
	}
	r, err := strconv.Atoi(actor[len("rank"):])
	if err != nil {
		return -1
	}
	return r
}

func build(d *Dump) *analysis {
	a := &analysis{
		d:           d,
		byActor:     make(map[string][]*node),
		actorOfRank: make(map[int]string),
		nodeOfRank:  make(map[int]int64),
		nodeDownAt:  make(map[int64]int64),
	}
	for ai := range d.Actors {
		ad := &d.Actors[ai]
		rank := rankOfActor(ad.Actor)
		ns := make([]*node, len(ad.Events))
		var prev *node
		for i, ev := range ad.Events {
			n := &node{actor: ad.Actor, rank: rank, idx: i, ev: ev, k: ev.KindOf(), prev: prev}
			ns[i] = n
			prev = n
			a.nodes = append(a.nodes, n)
			switch n.k {
			case KRankNode:
				a.actorOfRank[int(ev.A)] = fmt.Sprintf("rank%d", ev.A)
				a.nodeOfRank[int(ev.A)] = ev.B
			case KNodeDown:
				if _, seen := a.nodeDownAt[ev.A]; !seen {
					a.nodeDownAt[ev.A] = ev.At
				}
			}
		}
		a.byActor[ad.Actor] = ns
	}
	sort.SliceStable(a.nodes, func(i, j int) bool {
		if a.nodes[i].ev.At != a.nodes[j].ev.At {
			return a.nodes[i].ev.At < a.nodes[j].ev.At
		}
		return a.nodes[i].ev.Seq < a.nodes[j].ev.Seq
	})
	return a
}

// windowStart is the earliest time at which the actor's window is
// complete: 0 when nothing was evicted, else the first retained event.
func (a *analysis) windowStart(actor string) int64 {
	ad := a.d.Actor(actor)
	if ad == nil || ad.Dropped == 0 || len(ad.Events) == 0 {
		return 0
	}
	return ad.Events[0].At
}

// link adds the cross-actor happens-before edges.
func (a *analysis) link() {
	a.linkSends()
	a.linkRendezvous()
	a.linkFences()
	a.linkPuts()
}

// linkSends pairs the i-th KSendPost with the i-th KRecvMatch per
// (src, dst, tag) — the runtime delivers in FIFO order per pair and tag.
// Pairs are restricted to the interval where both rings are complete, so
// ring eviction cannot shift the pairing.
func (a *analysis) linkSends() {
	type key struct {
		src, dst, tag int64
	}
	sends := make(map[key][]*node)
	recvs := make(map[key][]*node)
	for _, n := range a.nodes {
		switch n.k {
		case KSendPost:
			if n.rank >= 0 {
				sends[key{int64(n.rank), n.ev.A, n.ev.B}] = append(sends[key{int64(n.rank), n.ev.A, n.ev.B}], n)
			}
		case KRecvMatch:
			if n.rank >= 0 {
				recvs[key{n.ev.A, int64(n.rank), n.ev.B}] = append(recvs[key{n.ev.A, int64(n.rank), n.ev.B}], n)
			}
		}
	}
	for k, ss := range sends {
		rs := recvs[k]
		srcActor := fmt.Sprintf("rank%d", k.src)
		dstActor := fmt.Sprintf("rank%d", k.dst)
		start := a.windowStart(srcActor)
		if s := a.windowStart(dstActor); s > start {
			start = s
		}
		ss = filterAfter(ss, start)
		rs = filterAfter(rs, start)
		for i := 0; i < len(ss) && i < len(rs); i++ {
			rs[i].preds = append(rs[i].preds, ss[i])
		}
	}
}

func filterAfter(ns []*node, start int64) []*node {
	if start == 0 {
		return ns
	}
	out := ns[:0:0]
	for _, n := range ns {
		if n.ev.At >= start {
			out = append(out, n)
		}
	}
	return out
}

// linkRendezvous ties the chunked-transfer events together by reqID:
// sender start → receiver CTS, and receiver done → sender done.
func (a *analysis) linkRendezvous() {
	starts := make(map[int64]*node)
	rdone := make(map[int64]*node)
	sdone := make(map[int64]*node)
	for _, n := range a.nodes {
		switch n.k {
		case KRdvStart:
			starts[n.ev.B] = n
		case KRdvCTS:
			if s := starts[n.ev.B]; s != nil {
				n.preds = append(n.preds, s)
			}
		case KRdvDone:
			// The sender records its done after the receiver's final ack,
			// so the receiver-side done (the one whose actor differs from
			// the start's actor) precedes the sender-side one.
			if s := starts[n.ev.B]; s != nil && s.actor == n.actor {
				sdone[n.ev.B] = n
			} else {
				rdone[n.ev.B] = n
			}
		}
	}
	for id, sn := range sdone {
		if rn := rdone[id]; rn != nil {
			sn.preds = append(sn.preds, rn)
		}
	}
}

// linkFences makes every KFenceEnter of a (window, round) a predecessor
// of every KFenceExit of the same round: a fence exit waited on all
// participants by construction.
func (a *analysis) linkFences() {
	type key struct{ win, round int64 }
	enters := make(map[key][]*node)
	exits := make(map[key][]*node)
	for _, n := range a.nodes {
		switch n.k {
		case KFenceEnter:
			enters[key{n.ev.A, n.ev.B}] = append(enters[key{n.ev.A, n.ev.B}], n)
		case KFenceExit:
			exits[key{n.ev.A, n.ev.B}] = append(exits[key{n.ev.A, n.ev.B}], n)
		}
	}
	for k, exs := range exits {
		for _, ex := range exs {
			for _, en := range enters[k] {
				if en.actor != ex.actor {
					ex.preds = append(ex.preds, en)
				}
			}
		}
	}
}

// linkPuts models put→delivery: a one-sided put becomes visible at the
// target no later than the target's next fence exit on the same window.
func (a *analysis) linkPuts() {
	// Target actor -> its fence exits, in time order (a.nodes is sorted).
	exits := make(map[string][]*node)
	for _, n := range a.nodes {
		if n.k == KFenceExit {
			exits[n.actor] = append(exits[n.actor], n)
		}
	}
	for _, n := range a.nodes {
		if n.k != KPut {
			continue
		}
		target := fmt.Sprintf("rank%d", n.ev.A)
		for _, ex := range exits[target] {
			if ex.ev.A == n.ev.C && ex.ev.At > n.ev.At {
				ex.preds = append(ex.preds, n)
				break
			}
		}
	}
}

// clocks assigns Lamport clocks processing events in global (At, Seq)
// order; every cross edge points backwards in that order because effects
// never precede causes in virtual time.
func (a *analysis) clocks() {
	for _, n := range a.nodes {
		var c int64
		if n.prev != nil && n.prev.clock > c {
			c = n.prev.clock
		}
		for _, p := range n.preds {
			if p.clock > c {
				c = p.clock
			}
		}
		n.clock = c + 1
	}
}

// chain walks the critical happens-before path backwards from the first
// KError event (the failure that triggered the dump), oldest first.
func (a *analysis) chain() []EventRef {
	var fail *node
	for _, n := range a.nodes {
		if n.k == KError {
			fail = n
			break
		}
	}
	if fail == nil {
		return nil
	}
	var refs []EventRef
	for n := fail; n != nil && len(refs) < 25; {
		refs = append(refs, n.ref())
		next := n.prev
		for _, p := range n.preds {
			if next == nil || p.clock > next.clock {
				next = p
			}
		}
		n = next
	}
	for i, j := 0, len(refs)-1; i < j; i, j = i+1, j-1 {
		refs[i], refs[j] = refs[j], refs[i]
	}
	return refs
}

// crashedBefore reports whether the actor's node crashed at or before t,
// and when.
func (a *analysis) crashedBefore(rank int, t int64) (int64, bool) {
	nd, ok := a.nodeOfRank[rank]
	if !ok {
		return 0, false
	}
	at, down := a.nodeDownAt[nd]
	if !down || at > t {
		return 0, false
	}
	return at, true
}

func (a *analysis) errorsOf(op Op) []*node {
	var out []*node
	for _, n := range a.nodes {
		if n.k == KError && Op(n.ev.A) == op {
			out = append(out, n)
		}
	}
	return out
}

// checkFenceStall attributes fence timeouts: for each OpFence error, find
// the round the failing rank was stuck in, and blame the participants
// that never entered that round or whose node had crashed — correlating
// with the injected node faults to name the root cause.
func (a *analysis) checkFenceStall() []Anomaly {
	var out []Anomaly
	blamed := make(map[string]bool)
	for _, e := range a.errorsOf(OpFence) {
		var enter *node
		for n := e.prev; n != nil; n = n.prev {
			if n.k == KFenceEnter {
				enter = n
				break
			}
		}
		if enter == nil {
			continue
		}
		win, round := enter.ev.A, enter.ev.B
		// Participants: every actor ever seen fencing this window.
		participants := make(map[string]*node) // actor -> its enter for this round (nil value means absent)
		for _, n := range a.nodes {
			if n.k == KFenceEnter && n.ev.A == win {
				if n.ev.B == round {
					participants[n.actor] = n
				} else if _, ok := participants[n.actor]; !ok {
					participants[n.actor] = nil
				}
			}
		}
		names := make([]string, 0, len(participants))
		for p := range participants {
			names = append(names, p)
		}
		sort.Strings(names)
		found := false
		for _, p := range names {
			if p == e.actor {
				continue
			}
			entered := participants[p] != nil
			crashT, down := a.crashedBefore(rankOfActor(p), e.ev.At)
			if entered && !down {
				continue
			}
			found = true
			key := fmt.Sprintf("fence-stall/%s/%d/%d", p, win, round)
			if blamed[key] {
				continue
			}
			blamed[key] = true
			an := Anomaly{Check: "fence-stall", Actor: p, Evidence: []EventRef{e.ref(), enter.ref()}}
			nd := a.nodeOfRank[rankOfActor(p)]
			switch {
			case down:
				an.Severity = 100
				an.Summary = fmt.Sprintf(
					"fence round %d on window %d stalled: %s held up the barrier — injected crash of node%d at %v is the root cause",
					round, win, p, nd, time.Duration(crashT))
			default:
				an.Severity = 85
				an.Summary = fmt.Sprintf(
					"fence round %d on window %d stalled: %s never entered the round (last seen in an earlier round)",
					round, win, p)
			}
			if en := participants[p]; en != nil {
				an.Evidence = append(an.Evidence, en.ref())
			}
			out = append(out, an)
		}
		if !found {
			out = append(out, Anomaly{
				Check: "fence-stall", Severity: 70,
				Summary: fmt.Sprintf(
					"fence round %d on window %d timed out on %s but every participant entered and no crash was recorded",
					round, win, e.actor),
				Evidence: []EventRef{e.ref(), enter.ref()},
			})
		}
	}
	return out
}

// checkAgreement verifies shrink agreements: every participant of an
// agreement must adopt the same dead-set digest (divergence is a
// split-brain), and a stalled agreement is attributed to crashed members.
func (a *analysis) checkAgreement() []Anomaly {
	var out []Anomaly
	adopts := make(map[int64][]*node)
	for _, n := range a.nodes {
		if n.k == KShrinkAdopt {
			adopts[n.ev.A] = append(adopts[n.ev.A], n)
		}
	}
	ids := make([]int64, 0, len(adopts))
	for id := range adopts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ns := adopts[id]
		digests := make(map[int64][]string)
		for _, n := range ns {
			digests[n.ev.C] = append(digests[n.ev.C], n.actor)
		}
		if len(digests) > 1 {
			var parts []string
			for dg, actors := range digests {
				sort.Strings(actors)
				parts = append(parts, fmt.Sprintf("%s adopted digest %x", strings.Join(actors, ","), dg))
			}
			sort.Strings(parts)
			an := Anomaly{
				Check: "agreement-divergence", Severity: 95,
				Summary: fmt.Sprintf("shrink agreement %x diverged: %s", id, strings.Join(parts, "; ")),
			}
			for _, n := range ns {
				an.Evidence = append(an.Evidence, n.ref())
			}
			out = append(out, an)
		}
	}
	// Stalled agreements: an OpShrink error, attributed to crashed members.
	for _, e := range a.errorsOf(OpShrink) {
		attributed := false
		ranks := make([]int, 0, len(a.nodeOfRank))
		for r := range a.nodeOfRank {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			if crashT, down := a.crashedBefore(r, e.ev.At); down {
				attributed = true
				out = append(out, Anomaly{
					Check: "agreement-stall", Severity: 100,
					Actor: fmt.Sprintf("rank%d", r),
					Summary: fmt.Sprintf(
						"shrink agreement stalled on %s: rank%d held up the decision — injected crash of node%d at %v is the root cause",
						e.actor, r, a.nodeOfRank[r], time.Duration(crashT)),
					Evidence: []EventRef{e.ref()},
				})
			}
		}
		if !attributed {
			out = append(out, Anomaly{
				Check: "agreement-stall", Severity: 75,
				Summary: fmt.Sprintf("shrink agreement stalled on %s with no crash recorded", e.actor),
				Evidence: []EventRef{e.ref()},
			})
		}
	}
	return out
}

// checkRendezvous flags chunked transfers that started but neither
// completed nor were cancelled inside the dump window.
func (a *analysis) checkRendezvous() []Anomaly {
	done := make(map[int64]bool)
	chunks := make(map[int64]*node)
	for _, n := range a.nodes {
		switch n.k {
		case KRdvDone, KRdvCancel:
			done[n.ev.B] = true
		case KRdvChunk:
			chunks[n.ev.B] = n
		}
	}
	var out []Anomaly
	for _, n := range a.nodes {
		if n.k != KRdvStart || done[n.ev.B] {
			continue
		}
		peer := int(n.ev.A)
		received := int64(0)
		ev := []EventRef{n.ref()}
		if c := chunks[n.ev.B]; c != nil {
			received = c.ev.D
			ev = append(ev, c.ref())
		}
		an := Anomaly{Check: "stalled-rendezvous", Actor: n.actor, Evidence: ev}
		if crashT, crashed := a.crashedBefore(peer, maxAt(a.nodes)); crashed {
			an.Severity = 90
			an.Summary = fmt.Sprintf(
				"rendezvous %x %s->rank%d stalled after %d of %d bytes: rank%d's node crashed at %v",
				n.ev.B, n.actor, peer, received, n.ev.C, peer, time.Duration(crashT))
		} else {
			an.Severity = 70
			an.Summary = fmt.Sprintf(
				"rendezvous %x %s->rank%d stalled after %d of %d bytes with no crash recorded",
				n.ev.B, n.actor, peer, received, n.ev.C)
		}
		out = append(out, an)
	}
	return out
}

func maxAt(ns []*node) int64 {
	if len(ns) == 0 {
		return 0
	}
	return ns[len(ns)-1].ev.At
}

// checkEpochMonotonic pins the rmem epoch discipline: per actor, epoch
// stamps must be non-decreasing per shard and commit epochs strictly
// increasing.
func (a *analysis) checkEpochMonotonic() []Anomaly {
	var out []Anomaly
	actors := make([]string, 0, len(a.byActor))
	for actor := range a.byActor {
		actors = append(actors, actor)
	}
	sort.Strings(actors)
	for _, actor := range actors {
		lastStamp := make(map[int64]int64)
		lastCommit := int64(-1)
		for _, n := range a.byActor[actor] {
			switch n.k {
			case KEpochStamp:
				if prev, ok := lastStamp[n.ev.A]; ok && n.ev.B < prev {
					out = append(out, Anomaly{
						Check: "epoch-regression", Severity: 80, Actor: actor,
						Summary: fmt.Sprintf("%s stamped epoch %d on shard %d after %d — epoch stamps must never regress",
							actor, n.ev.B, n.ev.A, prev),
						Evidence: []EventRef{n.ref()},
					})
				}
				lastStamp[n.ev.A] = n.ev.B
			case KCommit:
				if n.ev.A <= lastCommit {
					out = append(out, Anomaly{
						Check: "epoch-regression", Severity: 80, Actor: actor,
						Summary: fmt.Sprintf("%s committed epoch %d after %d — commit epochs must strictly increase",
							actor, n.ev.A, lastCommit),
						Evidence: []EventRef{n.ref()},
					})
				}
				lastCommit = n.ev.A
			}
		}
	}
	return out
}

// checkDurability surfaces committed writes the verifier found missing,
// tying each back to the staging/replay event of the lost sequence.
func (a *analysis) checkDurability() []Anomaly {
	var out []Anomaly
	for _, n := range a.nodes {
		if n.k != KWriteLost {
			continue
		}
		an := Anomaly{
			Check: "lost-write", Severity: 92, Actor: n.actor,
			Summary: fmt.Sprintf("%s committed key %d at seq %d but the store now serves seq %d — durability violated",
				n.actor, n.ev.A, n.ev.B, n.ev.C),
			Evidence: []EventRef{n.ref()},
		}
		for _, m := range a.byActor[n.actor] {
			if (m.k == KPutStage || m.k == KReplay) && m.ev.A == n.ev.A && m.ev.B == n.ev.B {
				an.Evidence = append(an.Evidence, m.ref())
			}
		}
		out = append(out, an)
		if len(out) >= 16 {
			break
		}
	}
	return out
}

// checkUnmatchedSends counts sends without a matching receive per
// (src, dst, tag) inside the interval where both windows are complete.
func (a *analysis) checkUnmatchedSends() []Anomaly {
	type key struct {
		src, dst, tag int64
	}
	sends := make(map[key]int)
	recvs := make(map[key]int)
	lastSend := make(map[key]*node)
	for _, n := range a.nodes {
		switch n.k {
		case KSendPost:
			if n.rank < 0 {
				continue
			}
			k := key{int64(n.rank), n.ev.A, n.ev.B}
			start := a.windowStart(n.actor)
			if s := a.windowStart(fmt.Sprintf("rank%d", k.dst)); s > start {
				start = s
			}
			if n.ev.At >= start {
				sends[k]++
				lastSend[k] = n
			}
		case KRecvMatch:
			if n.rank < 0 {
				continue
			}
			k := key{n.ev.A, int64(n.rank), n.ev.B}
			start := a.windowStart(n.actor)
			if s := a.windowStart(fmt.Sprintf("rank%d", k.src)); s > start {
				start = s
			}
			if n.ev.At >= start {
				recvs[k]++
			}
		}
	}
	type miss struct {
		k    key
		diff int
	}
	var misses []miss
	for k, s := range sends {
		if d := s - recvs[k]; d > 0 {
			misses = append(misses, miss{k, d})
		}
	}
	sort.Slice(misses, func(i, j int) bool {
		if misses[i].diff != misses[j].diff {
			return misses[i].diff > misses[j].diff
		}
		return misses[i].k != misses[j].k && (misses[i].k.src < misses[j].k.src ||
			(misses[i].k.src == misses[j].k.src && (misses[i].k.dst < misses[j].k.dst ||
				(misses[i].k.dst == misses[j].k.dst && misses[i].k.tag < misses[j].k.tag))))
	})
	if len(misses) > 8 {
		misses = misses[:8]
	}
	var out []Anomaly
	for _, m := range misses {
		an := Anomaly{
			Check: "unmatched-send",
			Actor: fmt.Sprintf("rank%d", m.k.dst),
			Summary: fmt.Sprintf("%d send(s) rank%d->rank%d tag %d never matched a receive in the dump window",
				m.diff, m.k.src, m.k.dst, m.k.tag),
		}
		if _, down := a.crashedBefore(int(m.k.dst), maxAt(a.nodes)); down {
			an.Severity = 60
			an.Summary += fmt.Sprintf(" (rank%d's node crashed)", m.k.dst)
		} else {
			an.Severity = 30
		}
		if n := lastSend[m.k]; n != nil {
			an.Evidence = []EventRef{n.ref()}
		}
		out = append(out, an)
	}
	return out
}
