package flight

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRingWindowWrap(t *testing.T) {
	rec := New(4)
	rg := rec.Actor("rank0")
	for i := 0; i < 6; i++ {
		rg.Record(time.Duration(i)*time.Microsecond, KSendPost, int64(i), 0, 0, 0)
	}
	evs, dropped := rg.Window()
	if len(evs) != 4 || dropped != 2 {
		t.Fatalf("Window: %d events, %d dropped, want 4 and 2", len(evs), dropped)
	}
	for i, e := range evs {
		if e.A != int64(i+2) {
			t.Errorf("event %d: A = %d, want %d (oldest-first after eviction)", i, e.A, i+2)
		}
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("event %d: seq %d not increasing", i, e.Seq)
		}
	}
	if rg.Dropped() != 2 || rg.Len() != 4 {
		t.Errorf("Dropped/Len = %d/%d, want 2/4", rg.Dropped(), rg.Len())
	}
}

func TestGlobalSeqTotalOrder(t *testing.T) {
	rec := New(8)
	a, b := rec.Actor("rank0"), rec.Actor("rank1")
	a.Record(0, KSendPost, 0, 0, 0, 0)
	b.Record(0, KRecvMatch, 0, 0, 0, 0)
	a.Record(0, KSendPost, 1, 0, 0, 0)
	if s1, s2, s3 := a.Events()[0].Seq, b.Events()[0].Seq, a.Events()[1].Seq; !(s1 < s2 && s2 < s3) {
		t.Errorf("global seq not a total order across rings: %d %d %d", s1, s2, s3)
	}
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	rg := rec.Actor("rank0")
	if rg != nil {
		t.Fatalf("nil recorder handed out a non-nil ring")
	}
	rg.Record(0, KSendPost, 0, 0, 0, 0)
	rg.Fail(0, OpSend, 1, errors.New("boom"))
	if evs, dropped := rg.Window(); evs != nil || dropped != 0 {
		t.Errorf("nil ring Window = %v, %d", evs, dropped)
	}
	if rg.Events() != nil || rg.Dropped() != 0 || rg.Len() != 0 || rg.Actor() != "" {
		t.Errorf("nil ring accessors not inert")
	}
	rec.SetDumpPath("/nonexistent")
	rec.SetDumpSink(func(*Dump) {})
	if rec.Dumped() || rec.DumpErr() != nil || rec.Reason() != "" {
		t.Errorf("nil recorder state accessors not inert")
	}
	if rec.Snapshot("x") != nil || rec.ForceDump("x") != nil {
		t.Errorf("nil recorder snapshots not nil")
	}
}

func TestFirstFailureWinsAndDumpFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dump.json")
	rec := New(16)
	rec.SetDumpPath(path)
	sinks := 0
	rec.SetDumpSink(func(*Dump) { sinks++ })
	rg := rec.Actor("rank0")
	rg.Record(10*time.Microsecond, KFenceEnter, 0, 1, 0, 0)
	rg.Fail(20*time.Microsecond, OpFence, -1, errors.New("fence timed out"))
	rec.Actor("rank1").Fail(30*time.Microsecond, OpRecv, 0, errors.New("later failure"))
	if sinks != 1 {
		t.Fatalf("sink fired %d times, want 1 (first failure wins)", sinks)
	}
	if !rec.Dumped() {
		t.Fatal("Dumped() false after Fail")
	}
	if !strings.Contains(rec.Reason(), "rank0") || !strings.Contains(rec.Reason(), "fence") {
		t.Errorf("Reason() = %q, want the first failure's actor and op", rec.Reason())
	}
	if err := rec.DumpErr(); err != nil {
		t.Fatalf("dump file write failed: %v", err)
	}
	d, err := ReadDumpFile(path)
	if err != nil {
		t.Fatalf("ReadDumpFile: %v", err)
	}
	// The snapshot was taken at the first failure: rank1's later KError is
	// absent, rank0's KFenceEnter and KError are present.
	if ad := d.Actor("rank1"); ad != nil {
		for _, e := range ad.Events {
			if e.KindOf() == KError {
				t.Errorf("dump contains the post-dump failure of rank1")
			}
		}
	}
	r0 := d.Actor("rank0")
	if r0 == nil || len(r0.Events) != 2 || r0.Events[1].KindOf() != KError {
		t.Fatalf("rank0 window = %+v, want fence-enter then error", r0)
	}
	if Op(r0.Events[1].A) != OpFence || r0.Events[1].B != -1 {
		t.Errorf("KError payload = %+v, want op=fence peer=-1", r0.Events[1])
	}
}

func TestDumpRoundTrip(t *testing.T) {
	rec := New(8)
	rec.Actor("rank1").Record(5*time.Microsecond, KPut, 2, 128, 0, 1)
	rec.Actor("rank0").Record(3*time.Microsecond, KSendPost, 1, 7, 64, 2)
	d := rec.Snapshot("roundtrip")
	if len(d.Actors) != 2 || d.Actors[0].Actor != "rank0" || d.Actors[1].Actor != "rank1" {
		t.Fatalf("actors not sorted: %+v", d.Actors)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if got.Reason != "roundtrip" || got.Cap != 8 || got.TotalEvents() != 2 {
		t.Errorf("roundtrip lost header: %+v", got)
	}
	e := got.Actor("rank0").Events[0]
	if e.KindOf() != KSendPost || e.Time() != 3*time.Microsecond || e.A != 1 || e.B != 7 || e.C != 64 || e.D != 2 {
		t.Errorf("roundtrip lost event payload: %+v", e)
	}
	// A second encoding of the same snapshot is byte-identical.
	var buf2 bytes.Buffer
	if err := d.WriteJSON(&buf2); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("snapshot encoding not deterministic")
	}
}

func TestForceDumpMarksDumped(t *testing.T) {
	rec := New(8)
	rec.Actor("rank0").Record(0, KCommit, 1, 3, 0, 0)
	sinks := 0
	rec.SetDumpSink(func(*Dump) { sinks++ })
	d := rec.ForceDump("end of run")
	if d == nil || d.Reason != "end of run" || sinks != 1 {
		t.Fatalf("ForceDump: d=%v sinks=%d", d, sinks)
	}
	rec.Actor("rank0").Fail(time.Microsecond, OpCommit, -1, errors.New("late"))
	if sinks != 1 || rec.Reason() != "end of run" {
		t.Errorf("Fail after ForceDump overwrote the dump")
	}
}

func TestKindAndOpNames(t *testing.T) {
	for k := KNone; k < kindCount; k++ {
		name := k.String()
		if strings.HasPrefix(name, "kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
		if KindFromName(name) != k {
			t.Errorf("KindFromName(%q) = %v, want %v", name, KindFromName(name), k)
		}
	}
	if KindFromName("no-such-kind") != KNone {
		t.Errorf("unknown kind name did not map to KNone")
	}
	if OpFence.String() != "fence" || OpRecover.String() != "recover" {
		t.Errorf("op names wrong: %v %v", OpFence, OpRecover)
	}
}

func TestDigests(t *testing.T) {
	if DigestInts([]int{3, 1, 2}) != DigestInts([]int{2, 3, 1}) {
		t.Errorf("DigestInts not order-insensitive")
	}
	if DigestInts([]int{1}) == DigestInts([]int{2}) {
		t.Errorf("DigestInts collides on distinct singletons")
	}
	if DigestInts(nil) < 0 || DigestString("mpi.shrink.0.1") < 0 {
		t.Errorf("digests must be non-negative (they ride in int64 payload words)")
	}
	if DigestString("a") == DigestString("b") {
		t.Errorf("DigestString collides on distinct keys")
	}
}

// TestAllocsFlightRecord pins the recording hot path at zero allocations:
// the recorder sits next to the 0-alloc pack/PIO paths, so a single
// allocation per event would show up in every pinned benchmark.
func TestAllocsFlightRecord(t *testing.T) {
	rec := New(64)
	rg := rec.Actor("rank0")
	if n := testing.AllocsPerRun(1000, func() {
		rg.Record(time.Microsecond, KSendPost, 1, 5, 64, 2)
	}); n != 0 {
		t.Errorf("Ring.Record allocates %v per op, want 0", n)
	}
	var nilRing *Ring
	if n := testing.AllocsPerRun(1000, func() {
		nilRing.Record(time.Microsecond, KSendPost, 1, 5, 64, 2)
	}); n != 0 {
		t.Errorf("nil Ring.Record allocates %v per op, want 0", n)
	}
}

func writeFile(t *testing.T, d *Dump) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "d.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestReadDumpFileStdinDash(t *testing.T) {
	rec := New(4)
	rec.Actor("rank0").Record(0, KCommit, 1, 0, 0, 0)
	path := writeFile(t, rec.Snapshot("x"))
	d, err := ReadDumpFile(path)
	if err != nil || d.TotalEvents() != 1 {
		t.Fatalf("ReadDumpFile: %v, %d events", err, d.TotalEvents())
	}
}
