package flight

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// Synthetic-dump analyzer tests: each builds a small recorder by hand and
// checks that Analyze reconstructs the causality and blames the right
// actor. The end-to-end versions (real cluster, injected faults) live in
// internal/osc and internal/rmem.

const us = time.Microsecond

func topo(rec *Recorder, ranks ...int64) {
	tp := rec.Actor("topology")
	for r, node := range ranks {
		tp.Record(0, KRankNode, int64(r), node, 0, 0)
	}
}

func TestAnalyzeFenceStallBlamesInjectedCrash(t *testing.T) {
	rec := New(32)
	topo(rec, 0, 1, 2) // ranki runs on nodei
	rec.Actor("node1").Record(100*us, KNodeDown, 1, 0, 0, 0)
	r0, r1, r2 := rec.Actor("rank0"), rec.Actor("rank1"), rec.Actor("rank2")
	for _, rg := range []*Ring{r0, r1, r2} {
		rg.Record(10*us, KFenceEnter, 0, 1, 0, 0)
		rg.Record(20*us, KFenceExit, 0, 1, 2, 0)
	}
	// Round 2: rank1's node is down, it never enters; the survivors stall.
	r0.Record(110*us, KFenceEnter, 0, 2, 0, 0)
	r2.Record(110*us, KFenceEnter, 0, 2, 0, 0)
	r0.Fail(200*us, OpFence, -1, errors.New("fence timed out"))

	d := rec.Snapshot("test")
	rep := Analyze(d)
	if len(rep.Anomalies) == 0 {
		t.Fatal("no anomalies on a stalled fence")
	}
	top := rep.Anomalies[0]
	if top.Check != "fence-stall" || top.Severity != 100 || top.Actor != "rank1" {
		t.Fatalf("top anomaly = %+v, want fence-stall sev 100 blaming rank1", top)
	}
	if !strings.Contains(top.Summary, "injected crash of node1") ||
		!strings.Contains(top.Summary, "root cause") {
		t.Errorf("summary %q does not name the injected crash as root cause", top.Summary)
	}
	// rank2 entered the round and its node is up: it must not be blamed.
	for _, an := range rep.Anomalies {
		if an.Check == "fence-stall" && an.Actor == "rank2" {
			t.Errorf("healthy participant rank2 blamed: %+v", an)
		}
	}
	if len(rep.Chain) < 2 || rep.Chain[len(rep.Chain)-1].Actor != "rank0" {
		t.Errorf("chain = %+v, want a path ending at rank0's failure", rep.Chain)
	}
	var buf bytes.Buffer
	WriteReport(&buf, d, rep)
	if !strings.Contains(buf.String(), "root cause") {
		t.Errorf("rendered report lacks the root-cause line:\n%s", buf.String())
	}
}

func TestAnalyzeFenceStallNoCrashLowerSeverity(t *testing.T) {
	rec := New(32)
	topo(rec, 0, 1)
	r0, r1 := rec.Actor("rank0"), rec.Actor("rank1")
	r0.Record(10*us, KFenceEnter, 0, 1, 0, 0)
	r1.Record(10*us, KFenceEnter, 0, 1, 0, 0)
	r0.Record(20*us, KFenceExit, 0, 1, 1, 0)
	r1.Record(20*us, KFenceExit, 0, 1, 1, 0)
	r0.Record(30*us, KFenceEnter, 0, 2, 0, 0)
	r0.Fail(90*us, OpFence, -1, errors.New("fence timed out"))
	rep := Analyze(rec.Snapshot("test"))
	top := rep.Anomalies[0]
	if top.Check != "fence-stall" || top.Severity != 85 || top.Actor != "rank1" {
		t.Fatalf("top anomaly = %+v, want sev-85 fence-stall on rank1 (absent, no crash)", top)
	}
	if strings.Contains(top.Summary, "root cause") {
		t.Errorf("no fault was injected, yet summary claims a root cause: %q", top.Summary)
	}
}

func TestAnalyzeAgreementDivergence(t *testing.T) {
	rec := New(16)
	rec.Actor("rank0").Record(10*us, KShrinkAdopt, 7, 1, 111, 0)
	rec.Actor("rank1").Record(11*us, KShrinkAdopt, 7, 1, 222, 0)
	rep := Analyze(rec.Snapshot("test"))
	if len(rep.Anomalies) != 1 {
		t.Fatalf("anomalies = %+v, want exactly the divergence", rep.Anomalies)
	}
	an := rep.Anomalies[0]
	if an.Check != "agreement-divergence" || an.Severity != 95 ||
		!strings.Contains(an.Summary, "diverged") {
		t.Errorf("anomaly = %+v, want sev-95 agreement-divergence", an)
	}
	if len(an.Evidence) != 2 {
		t.Errorf("evidence = %+v, want both adopts", an.Evidence)
	}
}

func TestAnalyzeAgreementStallBlamesCrash(t *testing.T) {
	rec := New(16)
	topo(rec, 0, 1)
	rec.Actor("node1").Record(50*us, KNodeDown, 1, 0, 0, 0)
	rec.Actor("rank0").Fail(100*us, OpShrink, -1, errors.New("agreement timed out"))
	rep := Analyze(rec.Snapshot("test"))
	top := rep.Anomalies[0]
	if top.Check != "agreement-stall" || top.Severity != 100 || top.Actor != "rank1" {
		t.Fatalf("top anomaly = %+v, want sev-100 agreement-stall blaming rank1", top)
	}
	if !strings.Contains(top.Summary, "injected crash of node1") {
		t.Errorf("summary %q does not name the injected crash", top.Summary)
	}
}

func TestAnalyzeEpochRegression(t *testing.T) {
	rec := New(16)
	rg := rec.Actor("rank0")
	rg.Record(10*us, KEpochStamp, 2, 5, 1, 0)
	rg.Record(20*us, KEpochStamp, 2, 3, 1, 0) // regresses shard 2 from 5 to 3
	rg.Record(30*us, KCommit, 4, 2, 0, 0)
	rg.Record(40*us, KCommit, 4, 2, 0, 0) // commit epoch not strictly increasing
	rep := Analyze(rec.Snapshot("test"))
	if len(rep.Anomalies) != 2 {
		t.Fatalf("anomalies = %+v, want stamp regression and commit regression", rep.Anomalies)
	}
	for _, an := range rep.Anomalies {
		if an.Check != "epoch-regression" || an.Severity != 80 || an.Actor != "rank0" {
			t.Errorf("anomaly = %+v, want sev-80 epoch-regression on rank0", an)
		}
	}
}

func TestAnalyzeLostWriteTiesEvidenceToStage(t *testing.T) {
	rec := New(16)
	rg := rec.Actor("rank0")
	rg.Record(10*us, KPutStage, 9, 4, 1, 0)
	rg.Record(50*us, KWriteLost, 9, 4, 0, 0)
	rep := Analyze(rec.Snapshot("test"))
	top := rep.Anomalies[0]
	if top.Check != "lost-write" || top.Severity != 92 ||
		!strings.Contains(top.Summary, "durability violated") {
		t.Fatalf("top anomaly = %+v, want sev-92 lost-write", top)
	}
	if len(top.Evidence) != 2 || top.Evidence[1].Index != 0 {
		t.Errorf("evidence = %+v, want the lost-write plus its staging event", top.Evidence)
	}
}

func TestAnalyzeStalledRendezvous(t *testing.T) {
	rec := New(16)
	topo(rec, 0, 1)
	rec.Actor("node1").Record(30*us, KNodeDown, 1, 0, 0, 0)
	rec.Actor("rank0").Record(10*us, KRdvStart, 1, 0x42, 1000, 0)
	rec.Actor("rank1").Record(20*us, KRdvChunk, 0, 0x42, 256, 256)
	rep := Analyze(rec.Snapshot("test"))
	top := rep.Anomalies[0]
	if top.Check != "stalled-rendezvous" || top.Severity != 90 || top.Actor != "rank0" {
		t.Fatalf("top anomaly = %+v, want sev-90 stalled-rendezvous", top)
	}
	if !strings.Contains(top.Summary, "256 of 1000 bytes") ||
		!strings.Contains(top.Summary, "crashed") {
		t.Errorf("summary %q lacks progress or crash attribution", top.Summary)
	}
}

func TestAnalyzeClocksAndChainAcrossSendRecv(t *testing.T) {
	rec := New(16)
	rec.Actor("rank0").Record(10*us, KSendPost, 1, 5, 64, 1)
	r1 := rec.Actor("rank1")
	r1.Record(20*us, KRecvMatch, 0, 5, 64, 2)
	r1.Fail(30*us, OpRecv, 0, errors.New("payload corrupt"))
	rep := Analyze(rec.Snapshot("test"))
	want := []int64{2, 3}
	for i, c := range rep.Clocks["rank1"] {
		if c != want[i] {
			t.Errorf("rank1 clock[%d] = %d, want %d (recv inherits the send's clock)", i, c, want[i])
		}
	}
	if len(rep.Chain) != 3 {
		t.Fatalf("chain = %+v, want send -> recv-match -> error", rep.Chain)
	}
	if rep.Chain[0].Actor != "rank0" || rep.Chain[1].Actor != "rank1" || rep.Chain[2].Actor != "rank1" {
		t.Errorf("chain actors = %+v, want [rank0 rank1 rank1]", rep.Chain)
	}
}

func TestAnalyzeUnmatchedSends(t *testing.T) {
	rec := New(16)
	r0, r1 := rec.Actor("rank0"), rec.Actor("rank1")
	for i := 0; i < 3; i++ {
		r0.Record(time.Duration(10+i)*us, KSendPost, 1, 2, 64, 1)
	}
	r1.Record(12*us, KRecvMatch, 0, 2, 64, 2)
	rep := Analyze(rec.Snapshot("test"))
	top := rep.Anomalies[0]
	if top.Check != "unmatched-send" || top.Severity != 30 || top.Actor != "rank1" {
		t.Fatalf("top anomaly = %+v, want sev-30 unmatched-send at rank1", top)
	}
	if !strings.Contains(top.Summary, "2 send(s)") {
		t.Errorf("summary %q, want 2 unmatched sends counted", top.Summary)
	}
}

func TestAnalyzeEmptyDump(t *testing.T) {
	rep := Analyze(New(4).Snapshot("empty"))
	if len(rep.Anomalies) != 0 || len(rep.Chain) != 0 {
		t.Errorf("empty dump produced %+v", rep)
	}
}

func TestAnalyzeEvictionDoesNotShiftPairing(t *testing.T) {
	// rank0's window lost its oldest sends to eviction; pairing must only
	// consider the interval where both windows are complete, or the i-th
	// send would be matched with the (i+k)-th receive and every pair would
	// look anomalous.
	rec := New(4)
	r0, r1 := rec.Actor("rank0"), rec.Actor("rank1")
	for i := 0; i < 8; i++ {
		r0.Record(time.Duration(10+2*i)*us, KSendPost, 1, 2, 64, 1)
		r1.Record(time.Duration(11+2*i)*us, KRecvMatch, 0, 2, 64, 2)
	}
	rep := Analyze(rec.Snapshot("test"))
	for _, an := range rep.Anomalies {
		if an.Check == "unmatched-send" {
			t.Errorf("eviction produced a phantom unmatched send: %+v", an)
		}
	}
}
