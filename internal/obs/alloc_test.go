package obs

import "testing"

// Disabled observability must be free on the hot path: every nil collector
// and nil trace operation must be allocation-free (the acceptance criterion
// for leaving instrumentation compiled into the PIO fast path).

func TestNilObservabilityAllocFree(t *testing.T) {
	var (
		r  *Registry
		tr *Trace
	)
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")

	cases := []struct {
		name string
		fn   func()
	}{
		{"nil counter add", func() { c.Add(5) }},
		{"nil gauge set", func() { g.Set(5) }},
		{"nil gauge max", func() { g.Max(5) }},
		{"nil histogram observe", func() { h.Observe(5) }},
		{"nil registry counter lookup", func() { r.Counter("x").Add(1) }},
		{"nil trace instant", func() { tr.Instant(0, "a", "c", "d") }},
		{"nil trace span", func() {
			s := tr.StartSpan(0, "a", "c", "n")
			s.SetBytes(1)
			s.End(1)
		}},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

// Enabled counters stay allocation-free too (atomics, no boxing) once the
// collector handle is cached — the pattern the layers use.

func TestCachedCollectorsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sci.bytes")
	g := r.Gauge("sci.retries")
	h := r.Histogram("sci.pio.ns")
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter add", func() { c.Add(64) }},
		{"gauge max", func() { g.Max(3) }},
		{"histogram observe", func() { h.Observe(1500) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

// The benchmark pair backing the "disabled observability is free on the
// hot path" acceptance: compare ns/op and allocs/op of nil collectors
// (observability off) against live ones. Run with
// go test -bench BenchmarkCollectors -benchmem ./internal/obs/.
func BenchmarkCollectorsDisabled(b *testing.B) {
	var c *Counter
	var h *Histogram
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(64)
		h.Observe(1500)
		sp := tr.StartSpan(0, "rank0", "send", "eager")
		sp.SetBytes(64)
		sp.End(1)
	}
}

func BenchmarkCollectorsEnabled(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.bytes")
	h := r.Histogram("bench.ns")
	tr := NewTrace(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(64)
		h.Observe(1500)
		sp := tr.StartSpan(0, "rank0", "send", "eager")
		sp.SetBytes(64)
		sp.End(1)
	}
}
