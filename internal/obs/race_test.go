package obs

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// Concurrency stress for the trace exporter: per-actor span stacks, the
// shared span/event rings and drop counters, and a concurrent Chrome
// export. Run under -race in CI.

func TestTraceConcurrentStress(t *testing.T) {
	const (
		actors   = 8
		spansPer = 300
	)
	tr := NewTrace(128) // small ring so the drop counters are exercised

	var wg sync.WaitGroup
	for a := 0; a < actors; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			actor := fmt.Sprintf("rank%d", a)
			for i := 0; i < spansPer; i++ {
				at := time.Duration(i) * time.Microsecond
				outer := tr.StartSpan(at, actor, "send", "rdv")
				inner := tr.StartSpan(at+1, actor, "pack", "direct_pack_ff")
				inner.SetBytes(4096)
				inner.End(at + 2)
				outer.AddBytes(65536)
				outer.End(at + 3)
				tr.Instant(at+4, actor, "fault", "retry")
			}
		}(a)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			_ = tr.Spans()
			_ = tr.Events()
			_ = tr.SpanCount()
			_ = tr.EventCount()
			_ = tr.DroppedSpans()
			_ = tr.DroppedEvents()
			_ = tr.Actors()
			if err := tr.WriteChrome(io.Discard); err != nil {
				t.Errorf("WriteChrome: %v", err)
			}
		}
	}()
	wg.Wait()

	wantSpans := int64(actors * spansPer * 2)
	if got := int64(tr.SpanCount()) + tr.DroppedSpans(); got != wantSpans {
		t.Errorf("spans retained+dropped = %d, want %d", got, wantSpans)
	}
	wantEvents := int64(actors * spansPer)
	if got := int64(tr.EventCount()) + tr.DroppedEvents(); got != wantEvents {
		t.Errorf("events retained+dropped = %d, want %d", got, wantEvents)
	}
	if len(tr.Actors()) != actors {
		t.Errorf("actors = %v, want %d of them", tr.Actors(), actors)
	}
}

func TestChromeExportCarriesDropCounts(t *testing.T) {
	tr := NewTrace(2)
	for i := 0; i < 5; i++ {
		at := time.Duration(i) * time.Microsecond
		tr.StartSpan(at, "rank0", "send", "short").End(at + 1)
		tr.Instant(at, "rank0", "fault", "retry")
	}
	if tr.DroppedSpans() != 3 || tr.DroppedEvents() != 3 {
		t.Fatalf("drops = %d spans / %d events, want 3 / 3",
			tr.DroppedSpans(), tr.DroppedEvents())
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	evs, other, err := ReadChromeMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no events round-tripped")
	}
	if other.DroppedSpans != 3 || other.DroppedEvents != 3 {
		t.Errorf("otherData = %+v, want both drop counts at 3", other)
	}

	// A complete trace must not emit otherData at all.
	tr2 := NewTrace(0)
	tr2.StartSpan(0, "rank0", "send", "short").End(1)
	var buf2 bytes.Buffer
	if err := tr2.WriteChrome(&buf2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.String(), "otherData") {
		t.Errorf("complete trace emitted otherData:\n%s", buf2.String())
	}
	if _, other2, err := ReadChromeMeta(&buf2); err != nil || other2 != (ChromeOther{}) {
		t.Errorf("complete trace meta = %+v, %v; want zero, nil", other2, err)
	}
}
