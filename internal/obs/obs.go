// Package obs is the unified observability layer of the simulation: a
// metrics registry of named counters, gauges and log-bucketed latency
// histograms, plus span-based tracing layered on virtual time.
//
// Every protocol layer (sci, mpi, osc, pack, flow, fault) reports into
// these two sinks:
//
//   - A Registry holds labelled metrics. Counters and gauges are atomic;
//     histograms bucket values by powers of two and answer quantile
//     queries (p50/p95/p99/max), which is how the drivers attribute cost
//     to protocol paths (direct PIO pack vs. pack-and-send, direct
//     one-sided vs. emulation, remote-put Gets).
//   - A Trace records spans (StartSpan/End with parent/child links, so a
//     rendezvous send or an OSC epoch shows up as one nested tree) and
//     instant events, all timestamped in virtual time. Traces export to
//     Chrome trace-event JSON (loadable in chrome://tracing or Perfetto),
//     and aggregate into per-category latency/byte summaries.
//
// Everything is nil-safe: a nil *Registry hands out nil collectors, and
// nil collectors, nil *Trace and nil *Span are no-ops that allocate
// nothing, so disabled observability costs nothing on the hot paths
// (asserted by alloc_test.go).
package obs
