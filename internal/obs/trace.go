package obs

import (
	"fmt"
	"sync"
	"time"
)

// Event is one instant on the timeline: which actor did what, when
// (virtual time), and through which protocol category.
type Event struct {
	At       time.Duration
	Actor    string // "rank3", "dev1", "node0", ...
	Category string // "send", "recv", "rdv", "osc", "fault", ...
	Detail   string
}

// Span is one timed operation on the timeline. Spans on the same actor
// nest: a span started while another is open becomes its child, so a
// rendezvous send shows its pack and chunk phases as one tree. A nil span
// is a no-op.
type Span struct {
	ID     int64
	Parent int64 // 0 = root
	Actor  string
	// Category groups spans for aggregation ("send", "osc", "pack", ...);
	// Name is the operation ("rdv", "epoch", "direct_pack_ff", ...).
	Category string
	Name     string
	Detail   string
	Start    time.Duration
	EndAt    time.Duration
	// Bytes is the payload the span moved (0 if not a data operation).
	Bytes int64

	tr    *Trace
	ended bool
}

// Trace collects spans and instant events, timestamped in virtual time.
// All methods are safe for concurrent use; the nil trace discards
// everything at zero cost.
//
// With limit > 0 the trace is a ring buffer: the most recent limit spans
// and limit events are retained and older ones are dropped.
type Trace struct {
	mu     sync.Mutex
	limit  int
	nextID int64

	events  []Event
	eshead  int // ring start in events when len == limit
	edrop   int64
	spans   []*Span
	sphead  int
	spdrop  int64
	open    map[string][]*Span // per-actor stack of open spans
	actors  []string           // first-appearance order (stable tids)
	actorID map[string]int
}

// NewTrace returns a trace retaining at most limit spans and limit instant
// events (0 = unlimited). When full, the oldest entries are dropped.
func NewTrace(limit int) *Trace {
	return &Trace{
		limit:   limit,
		open:    make(map[string][]*Span),
		actorID: make(map[string]int),
	}
}

// Limit returns the configured retention limit (0 = unlimited).
func (t *Trace) Limit() int {
	if t == nil {
		return 0
	}
	return t.limit
}

func (t *Trace) noteActor(actor string) {
	if _, ok := t.actorID[actor]; !ok {
		t.actorID[actor] = len(t.actors)
		t.actors = append(t.actors, actor)
	}
}

// Instant records an instantaneous event.
func (t *Trace) Instant(at time.Duration, actor, category, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.noteActor(actor)
	e := Event{At: at, Actor: actor, Category: category, Detail: detail}
	if t.limit > 0 && len(t.events) >= t.limit {
		// Ring: overwrite the oldest slot, keeping the newest events.
		t.events[t.eshead] = e
		t.eshead = (t.eshead + 1) % t.limit
		t.edrop++
	} else {
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// Instantf is Instant with a formatted detail.
func (t *Trace) Instantf(at time.Duration, actor, category, format string, args ...any) {
	if t == nil {
		return
	}
	t.Instant(at, actor, category, fmt.Sprintf(format, args...))
}

// StartSpan opens a span at virtual time at. If the actor already has an
// open span, the new one becomes its child. End the span with Span.End;
// spans never ended are dropped at export time. A nil trace returns a nil
// span and allocates nothing.
func (t *Trace) StartSpan(at time.Duration, actor, category, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.noteActor(actor)
	t.nextID++
	s := &Span{
		ID: t.nextID, Actor: actor, Category: category, Name: name,
		Start: at, tr: t,
	}
	if stack := t.open[actor]; len(stack) > 0 {
		s.Parent = stack[len(stack)-1].ID
	}
	t.open[actor] = append(t.open[actor], s)
	t.mu.Unlock()
	return s
}

// SetBytes records the span's payload size. No-op on a nil span.
func (s *Span) SetBytes(n int64) {
	if s != nil {
		s.Bytes = n
	}
}

// AddBytes accumulates payload moved across several phases of the span.
func (s *Span) AddBytes(n int64) {
	if s != nil {
		s.Bytes += n
	}
}

// SetDetail attaches a formatted annotation. No-op on a nil span.
func (s *Span) SetDetail(format string, args ...any) {
	if s == nil {
		return
	}
	s.Detail = fmt.Sprintf(format, args...)
}

// End closes the span at virtual time at. Ending a span twice is a no-op,
// so `defer sp.End(...)` composes with early explicit ends.
func (s *Span) End(at time.Duration) {
	if s == nil || s.ended {
		return
	}
	t := s.tr
	t.mu.Lock()
	if s.ended { // re-check under the lock
		t.mu.Unlock()
		return
	}
	s.ended = true
	s.EndAt = at
	// Pop from the actor stack (normally the top; tolerate out-of-order
	// ends by searching down).
	stack := t.open[s.Actor]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == s {
			stack = append(stack[:i], stack[i+1:]...)
			break
		}
	}
	t.open[s.Actor] = stack
	if t.limit > 0 && len(t.spans) >= t.limit {
		t.spans[t.sphead] = s
		t.sphead = (t.sphead + 1) % t.limit
		t.spdrop++
	} else {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Events returns the retained instant events, oldest first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) == 0 {
		return nil
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.eshead:]...)
	out = append(out, t.events[:t.eshead]...)
	return out
}

// EventCount returns the number of retained instant events.
func (t *Trace) EventCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// DroppedEvents returns how many instant events the ring has evicted.
func (t *Trace) DroppedEvents() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.edrop
}

// DroppedSpans returns how many completed spans the ring has evicted.
func (t *Trace) DroppedSpans() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spdrop
}

// Spans returns the retained completed spans, in completion order (oldest
// first). The returned spans are shared; treat them as read-only.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return nil
	}
	out := make([]*Span, 0, len(t.spans))
	out = append(out, t.spans[t.sphead:]...)
	out = append(out, t.spans[:t.sphead]...)
	return out
}

// SpanCount returns the number of retained completed spans.
func (t *Trace) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Actors returns every actor seen, in first-appearance order. The index
// of an actor in this slice is its stable thread id in exports.
func (t *Trace) Actors() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.actors...)
}

// Duration of the span (0 while open).
func (s *Span) Duration() time.Duration {
	if s == nil || !s.ended {
		return 0
	}
	return s.EndAt - s.Start
}
