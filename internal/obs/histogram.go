package obs

import (
	"math/bits"
	"sync"
	"time"
)

// histBuckets is the number of logarithmic buckets: bucket i collects
// values v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Bucket 0
// holds exact zeros. 64 buckets cover the whole int64 range.
const histBuckets = 65

// Histogram is a log-bucketed distribution of non-negative int64 samples
// (latencies in nanoseconds, byte counts, ...). Quantiles interpolate
// linearly inside a bucket and are clamped by the exact observed min and
// max, so a single-sample histogram reports that sample at every quantile.
// The nil histogram discards everything.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [histBuckets]int64
}

// Observe records one sample. Negative samples are clamped to zero. No-op
// on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(uint64(v))]++
	h.mu.Unlock()
}

// ObserveDuration records a latency sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Merge folds the samples of o into h (bucket-wise; quantiles of the
// merged histogram are as accurate as the buckets allow).
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	s := o.Snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	if s.Count == 0 {
		return
	}
	if h.count == 0 || s.Min < h.min {
		h.min = s.Min
	}
	if s.Max > h.max {
		h.max = s.Max
	}
	h.count += s.Count
	h.sum += s.Sum
	for i, n := range s.Buckets {
		h.buckets[i] += n
	}
}

// HistSnapshot is a consistent point-in-time view of a histogram.
type HistSnapshot struct {
	Count, Sum     int64
	Min, Max, Mean int64
	P50, P95, P99  int64
	Buckets        [histBuckets]int64
}

// Snapshot returns a consistent copy with precomputed quantiles. The nil
// histogram snapshots to zeros.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	h.mu.Lock()
	s.Count, s.Sum, s.Min, s.Max = h.count, h.sum, h.min, h.max
	s.Buckets = h.buckets
	h.mu.Unlock()
	if s.Count > 0 {
		s.Mean = s.Sum / s.Count
	}
	s.P50 = s.quantile(0.50)
	s.P95 = s.quantile(0.95)
	s.P99 = s.quantile(0.99)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of the recorded samples:
// 0 for an empty histogram, the exact sample for q at the edges, and a
// linear interpolation inside the covering bucket otherwise.
func (h *Histogram) Quantile(q float64) int64 {
	s := h.Snapshot()
	return s.Quantile(q)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile computes a quantile from the snapshot (see Histogram.Quantile).
func (s *HistSnapshot) Quantile(q float64) int64 { return s.quantile(q) }

func (s *HistSnapshot) quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	// 1-based rank of the sample the quantile falls on.
	rank := int64(q*float64(s.Count)) + 1
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo, hi := bucketBounds(i)
			// Linear interpolation of the rank inside the bucket.
			frac := float64(rank-seen-1) / float64(n)
			v := lo + int64(frac*float64(hi-lo))
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		seen += n
	}
	return s.Max
}

// bucketBounds returns the inclusive value range [lo, hi] of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, int64(^uint64(0) >> 1)
	}
	return lo, int64(1)<<i - 1
}
