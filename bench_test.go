// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design choices called
// out in DESIGN.md. Each benchmark runs the corresponding experiment driver
// and reports the *modeled* (virtual-time) performance as custom metrics;
// the wall-clock ns/op measures the simulator itself.
//
// Run everything:
//
//	go test -bench=. -benchmem
package scimpich_test

import (
	"flag"
	"fmt"
	"testing"
	"time"

	"scimpich/internal/bench"
	"scimpich/internal/datatype"
	"scimpich/internal/fault"
	"scimpich/internal/mpi"
	"scimpich/internal/nic"
	"scimpich/internal/osc"
	"scimpich/internal/pack"
	"scimpich/internal/ring"
	"scimpich/internal/sci"
	"scimpich/internal/sim"
)

// faultSeed seeds the fault plans of BenchmarkFaultedExchange: the same
// seed reproduces the same fault schedule (and hence identical modeled
// metrics) run after run.
var faultSeed = flag.Uint64("fault.seed", 42, "seed for fault-injection benchmark plans")

// BenchmarkFig1RawSCI regenerates Figure 1 (raw PIO/DMA latency and
// bandwidth) and reports the 64 kiB operating point.
func BenchmarkFig1RawSCI(b *testing.B) {
	var r []bench.RawResult
	for i := 0; i < b.N; i++ {
		r = bench.RunRaw([]int64{8, 1024, 64 << 10})
	}
	b.ReportMetric(r[2].PIOWriteBW, "pio-write-MiB/s")
	b.ReportMetric(r[2].PIOReadBW, "pio-read-MiB/s")
	b.ReportMetric(r[2].DMABW, "dma-MiB/s")
	b.ReportMetric(r[0].PIOWriteLatency.Seconds()*1e6, "write-lat-µs")
}

// BenchmarkFig7Noncontig regenerates Figure 7 per block size.
func BenchmarkFig7Noncontig(b *testing.B) {
	for _, bs := range []int64{8, 128, 4096, 64 << 10} {
		b.Run(fmt.Sprintf("block=%d", bs), func(b *testing.B) {
			var r []bench.NoncontigResult
			for i := 0; i < b.N; i++ {
				r = bench.RunNoncontig([]int64{bs})
			}
			b.ReportMetric(r[0].InterFF, "sci-ff-MiB/s")
			b.ReportMetric(r[0].InterGeneric, "sci-generic-MiB/s")
			b.ReportMetric(r[0].InterContig, "sci-contig-MiB/s")
			b.ReportMetric(r[0].IntraFF, "shm-ff-MiB/s")
		})
	}
}

// BenchmarkFig9Sparse regenerates Figure 9 per access size.
func BenchmarkFig9Sparse(b *testing.B) {
	for _, a := range []int64{8, 256, 8 << 10} {
		b.Run(fmt.Sprintf("access=%d", a), func(b *testing.B) {
			var r []bench.SparseResult
			for i := 0; i < b.N; i++ {
				r = bench.RunSparse([]int64{a})
			}
			b.ReportMetric(r[0].PutSharedBW, "put-shared-MiB/s")
			b.ReportMetric(r[0].GetSharedBW, "get-shared-MiB/s")
			b.ReportMetric(r[0].PutPrivateLat, "put-private-µs")
			b.ReportMetric(r[0].PutSharedLat, "put-shared-µs")
		})
	}
}

// BenchmarkStridedWrite regenerates the §4.3 low-level strided-write study.
func BenchmarkStridedWrite(b *testing.B) {
	var ext []bench.StridedExtremes
	for i := 0; i < b.N; i++ {
		ext = bench.Extremes(bench.RunStrided([]int64{8, 256}))
	}
	b.ReportMetric(ext[0].MinBW, "8B-min-MiB/s")
	b.ReportMetric(ext[0].MaxBW, "8B-max-MiB/s")
	b.ReportMetric(ext[1].MinBW, "256B-min-MiB/s")
	b.ReportMetric(ext[1].MaxBW, "256B-max-MiB/s")
}

// BenchmarkFig10Platforms regenerates the cross-platform non-contiguous
// comparison and reports the T3E's plateau efficiency.
func BenchmarkFig10Platforms(b *testing.B) {
	sizes := []int64{64, 16 << 10}
	var rows []bench.PlatformNoncontigResult
	for i := 0; i < b.N; i++ {
		rows = bench.RunPlatformNoncontig(sizes)
	}
	for _, r := range rows {
		if r.ID == "C" {
			b.ReportMetric(r.NC[1]/r.C[1], "t3e-16k-efficiency")
		}
		if r.ID == "M-S" {
			b.ReportMetric(r.NC[1], "sci-ff-16k-MiB/s")
		}
	}
}

// BenchmarkFig11Platforms regenerates the cross-platform one-sided
// comparison at 1 kiB accesses.
func BenchmarkFig11Platforms(b *testing.B) {
	var rows []bench.PlatformSparseResult
	for i := 0; i < b.N; i++ {
		rows = bench.RunPlatformSparse([]int64{1024})
	}
	for _, r := range rows {
		switch r.ID {
		case "M-S":
			b.ReportMetric(r.BW[0], "sci-MiB/s")
		case "VIA":
			b.ReportMetric(r.Lat[0], "via-lat-µs")
		case "X-f":
			b.ReportMetric(r.BW[0], "lam-ethernet-MiB/s")
		}
	}
}

// BenchmarkFig12Scaling regenerates the scaling comparison.
func BenchmarkFig12Scaling(b *testing.B) {
	var series []bench.ScalingSeries
	for i := 0; i < b.N; i++ {
		series = bench.RunScaling(64 << 10)
	}
	for _, s := range series {
		if s.ID == "M-S" {
			b.ReportMetric(s.Points[0].BW, "sci-2nodes-MiB/s")
			b.ReportMetric(s.Points[len(s.Points)-1].BW, "sci-8nodes-MiB/s")
		}
	}
}

// BenchmarkTable2Utilization regenerates Table 2 at both link frequencies.
func BenchmarkTable2Utilization(b *testing.B) {
	var rows166, rows200 []bench.Table2Row
	for i := 0; i < b.N; i++ {
		rows166 = bench.RunTable2(166)
		rows200 = bench.RunTable2(200)
	}
	last := rows166[len(rows166)-1]
	b.ReportMetric(last.PerNode8, "8nodes-166MHz-MiB/s")
	b.ReportMetric(last.Eff*100, "8nodes-eff-%")
	b.ReportMetric(rows200[len(rows200)-1].PerNode8, "8nodes-200MHz-MiB/s")
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationPackEngines measures the host-CPU cost of the two
// packing engines on the same datatype: the flattened leaf/stack iteration
// versus the recursive tree walk. This is a real (wall-clock) benchmark of
// the algorithms themselves.
func BenchmarkAblationPackEngines(b *testing.B) {
	inner := datatype.StructOf(
		datatype.Field{Type: datatype.Int32, Blocklen: 1, Disp: 0},
		datatype.Field{Type: datatype.Char, Blocklen: 3, Disp: 4},
	)
	ty := datatype.Vector(4096, 2, 3, datatype.Resized(inner, 0, 8)).Commit()
	user := make([]byte, ty.Extent()+64)
	out := make([]byte, ty.Size())
	b.Run("direct_pack_ff", func(b *testing.B) {
		b.SetBytes(ty.Size())
		for i := 0; i < b.N; i++ {
			pack.FFPack(pack.BufferSink{Buf: out}, user, ty, 1, 0, -1)
		}
	})
	b.Run("generic_recursive", func(b *testing.B) {
		b.SetBytes(ty.Size())
		for i := 0; i < b.N; i++ {
			pack.GenericPack(out, user, ty, 1, 0, -1)
		}
	})
}

// BenchmarkAblationRendezvousChunk sweeps the handshake chunk size: beyond
// the L2 size the receive-side unpack thrashes the cache (the paper's §3.3.2
// protocol-parameter guidance).
func BenchmarkAblationRendezvousChunk(b *testing.B) {
	ty := datatype.Vector(8192, 16, 32, datatype.Float64).Commit() // 1 MiB payload
	src := make([]byte, ty.Extent()+64)
	for _, chunk := range []int64{32 << 10, 64 << 10, 256 << 10, 512 << 10} {
		b.Run(fmt.Sprintf("chunk=%dKiB", chunk>>10), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				cfg := mpi.DefaultConfig(2, 1)
				cfg.Protocol.RendezvousChunk = chunk
				var elapsed time.Duration
				mpi.Run(cfg, func(c *mpi.Comm) {
					switch c.Rank() {
					case 0:
						start := c.WtimeDuration()
						c.Send(src, 1, ty, 1, 0)
						c.Recv(nil, 0, datatype.Byte, 1, 1)
						elapsed = c.WtimeDuration() - start
					case 1:
						dst := make([]byte, len(src))
						c.Recv(dst, 1, ty, 0, 0)
						c.Send(nil, 0, datatype.Byte, 0, 1)
					}
				})
				bw = float64(ty.Size()) / elapsed.Seconds() / (1 << 20)
			}
			b.ReportMetric(bw, "modeled-MiB/s")
		})
	}
}

// BenchmarkAblationGetThreshold sweeps the direct-read / remote-put
// crossover of MPI_Get (paper §4.2).
func BenchmarkAblationGetThreshold(b *testing.B) {
	const n = 32 << 10
	for _, threshold := range []int64{0, 4 << 10, 1 << 30} {
		name := "remote-put-always"
		if threshold == 1<<30 {
			name = "direct-read-always"
		} else if threshold > 0 {
			name = fmt.Sprintf("threshold=%dKiB", threshold>>10)
		}
		b.Run(name, func(b *testing.B) {
			var lat time.Duration
			for i := 0; i < b.N; i++ {
				mpi.Run(mpi.DefaultConfig(2, 1), func(c *mpi.Comm) {
					s := osc.NewSystem(c)
					cfg := osc.DefaultConfig()
					cfg.GetDirectMax = threshold
					w := s.CreateShared(c.AllocShared(n), cfg)
					w.Fence()
					if c.Rank() == 0 {
						dst := make([]byte, n)
						start := c.WtimeDuration()
						w.Get(dst, n, datatype.Byte, 1, 0)
						lat = c.WtimeDuration() - start
					}
					w.Fence()
				})
			}
			b.ReportMetric(lat.Seconds()*1e6, "modeled-µs")
		})
	}
}

// BenchmarkAblationWriteCombine compares strided remote writes with the CPU
// write-combine buffer enabled and disabled (paper §4.3).
func BenchmarkAblationWriteCombine(b *testing.B) {
	run := func(wc bool, stride int64) float64 {
		e := sim.NewEngine()
		cfg := sci.DefaultConfig(2)
		cfg.WriteCombine = wc
		ic := sci.New(e, cfg)
		const total = 1 << 20
		seg := ic.Node(1).Export(total / 256 * stride * 2)
		var elapsed time.Duration
		e.Go("bench", func(p *sim.Proc) {
			m := ic.Node(0).MustImport(1, seg.ID())
			start := p.Now()
			m.WriteStrided(p, 0, make([]byte, total), 256, stride)
			ic.Node(0).StoreBarrier(p)
			elapsed = p.Now() - start
		})
		e.Run()
		return float64(total) / elapsed.Seconds() / (1 << 20)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(true, 512), "wc-aligned-MiB/s")
		b.ReportMetric(run(true, 520), "wc-misaligned-MiB/s")
		b.ReportMetric(run(false, 520), "wc-off-MiB/s")
	}
	_ = ring.DefaultLinkMHz
}

// BenchmarkAblationEagerThreshold sweeps the eager/rendezvous boundary for
// a 32 kiB message: too small a threshold forces handshakes on mid-size
// messages, too large a threshold spends eager-slot copies on bulk data.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	const size = 32 << 10
	src := make([]byte, size)
	run := func(eagerMax int64) float64 {
		cfg := mpi.DefaultConfig(2, 1)
		cfg.Protocol.EagerMax = eagerMax
		var elapsed time.Duration
		mpi.Run(cfg, func(c *mpi.Comm) {
			switch c.Rank() {
			case 0:
				start := c.WtimeDuration()
				for i := 0; i < 8; i++ {
					c.Send(src, size, datatype.Byte, 1, i)
				}
				c.Recv(nil, 0, datatype.Byte, 1, 99)
				elapsed = c.WtimeDuration() - start
			case 1:
				dst := make([]byte, size)
				for i := 0; i < 8; i++ {
					c.Recv(dst, size, datatype.Byte, 0, i)
				}
				c.Send(nil, 0, datatype.Byte, 0, 99)
			}
		})
		return float64(size*8) / elapsed.Seconds() / (1 << 20)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(4<<10), "eager4k-MiB/s")
		b.ReportMetric(run(16<<10), "eager16k-MiB/s")
		b.ReportMetric(run(64<<10), "eager64k-MiB/s")
	}
}

// BenchmarkOutlookOneVsTwoSided runs the paper's concluding comparison:
// synchronized ping-pong (where one-sided does not win) versus access to a
// busy, non-participating target (where it wins decisively).
func BenchmarkOutlookOneVsTwoSided(b *testing.B) {
	var r bench.OneVsTwoSidedResult
	for i := 0; i < b.N; i++ {
		r = bench.RunOneVsTwoSided()
	}
	b.ReportMetric(r.TwoSidedPingPong.Seconds()*1e6, "2sided-pingpong-µs")
	b.ReportMetric(r.OneSidedPingPong.Seconds()*1e6, "1sided-pingpong-µs")
	b.ReportMetric(r.TwoSidedBusy.Seconds()*1e6, "2sided-busy-µs")
	b.ReportMetric(r.OneSidedBusy.Seconds()*1e6, "1sided-busy-µs")
}

// BenchmarkAblationDMARendezvous compares PIO and DMA engines for large
// contiguous rendezvous chunks (the §6 outlook).
func BenchmarkAblationDMARendezvous(b *testing.B) {
	const size = 1 << 20
	src := make([]byte, size)
	run := func(dmaMin int64) float64 {
		cfg := mpi.DefaultConfig(2, 1)
		cfg.Protocol.DMAMin = dmaMin
		var elapsed time.Duration
		mpi.Run(cfg, func(c *mpi.Comm) {
			switch c.Rank() {
			case 0:
				start := c.WtimeDuration()
				c.Send(src, size, datatype.Byte, 1, 0)
				c.Recv(nil, 0, datatype.Byte, 1, 1)
				elapsed = c.WtimeDuration() - start
			case 1:
				dst := make([]byte, size)
				c.Recv(dst, size, datatype.Byte, 0, 0)
				c.Send(nil, 0, datatype.Byte, 0, 1)
			}
		})
		return float64(size) / elapsed.Seconds() / (1 << 20)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(0), "pio-MiB/s")
		b.ReportMetric(run(32<<10), "dma-MiB/s")
	}
}

// BenchmarkFaultedExchange measures the robustness machinery under a
// deterministic fault plan (seeded by -fault.seed): injected CRC/sequence
// errors, duplicated control packets and transfer-check failures on a busy
// exchange. It reports the modeled slowdown against the clean run plus the
// recovery counters (retries, dropped duplicates, check retries).
func BenchmarkFaultedExchange(b *testing.B) {
	const size = 64 << 10
	src := make([]byte, size)
	run := func(plan *fault.Plan) (time.Duration, *mpi.World) {
		cfg := mpi.DefaultConfig(4, 1)
		cfg.SCI.Fault = plan
		var w *mpi.World
		d := mpi.Run(cfg, func(c *mpi.Comm) {
			if c.Rank() == 0 {
				w = c.World()
			}
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			in := make([]byte, size)
			for r := 0; r < 8; r++ {
				c.Sendrecv(src, size, datatype.Byte, next, r, in, size, datatype.Byte, prev, r)
			}
		})
		return d, w
	}
	var clean, faulted time.Duration
	var w *mpi.World
	for i := 0; i < b.N; i++ {
		clean, _ = run(nil)
		faulted, w = run(fault.New(*faultSeed).
			WithWriteErrors(0.1).WithCheckErrors(0.05).WithDuplicates(0.1))
	}
	var retries, duplicates, checkRetries int64
	for r := 0; r < w.Size(); r++ {
		duplicates += w.Stats(r).Duplicates
		retries += w.Stats(r).SendRetries
	}
	for n := 0; n < 4; n++ {
		checkRetries += w.InterconnectStats(n).CheckRetries
	}
	b.ReportMetric(faulted.Seconds()/clean.Seconds(), "slowdown-x")
	b.ReportMetric(float64(retries), "send-retries")
	b.ReportMetric(float64(duplicates), "dropped-duplicates")
	b.ReportMetric(float64(checkRetries), "check-retries")
}

// BenchmarkFaultedOneSided measures graceful degradation: a window view
// revoked mid-run forces the one-sided layer off its direct path onto the
// emulation path, and the metric is the cost ratio between the two.
func BenchmarkFaultedOneSided(b *testing.B) {
	const n = 32 << 10
	var direct, degraded time.Duration
	var degradations int64
	for i := 0; i < b.N; i++ {
		run := func(plan *fault.Plan) (time.Duration, int64) {
			cfg := mpi.DefaultConfig(2, 1)
			cfg.SCI.Fault = plan
			var lat time.Duration
			var degr int64
			mpi.Run(cfg, func(c *mpi.Comm) {
				s := osc.NewSystem(c)
				w := s.CreateShared(c.AllocShared(n), osc.DefaultConfig())
				w.Fence()
				c.Proc().Sleep(2 * time.Millisecond)
				if c.Rank() == 0 {
					buf := make([]byte, n)
					start := c.WtimeDuration()
					w.Put(buf, n, datatype.Byte, 1, 0)
					lat = c.WtimeDuration() - start
					degr = w.Snapshot().Degradations
				}
				w.Fence()
			})
			return lat, degr
		}
		direct, _ = run(nil)
		degraded, degradations = run(fault.New(*faultSeed).RevokeSegment(1, 1, time.Millisecond))
	}
	b.ReportMetric(degraded.Seconds()/direct.Seconds(), "degraded-cost-x")
	b.ReportMetric(float64(degradations), "degradations")
}

// BenchmarkSimulatorThroughput measures raw simulator speed: events per
// wall-clock second for a busy 8x2 cluster exchange.
func BenchmarkSimulatorThroughput(b *testing.B) {
	buf := make([]byte, 64<<10)
	for i := 0; i < b.N; i++ {
		mpi.Run(mpi.DefaultConfig(8, 2), func(c *mpi.Comm) {
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			in := make([]byte, len(buf))
			for r := 0; r < 4; r++ {
				c.Sendrecv(buf, len(buf), datatype.Byte, next, r, in, len(in), datatype.Byte, prev, r)
			}
		})
	}
}

// BenchmarkNICTransport runs the noncontig workload over the message-NIC
// fabric (Myrinet class): the comparator configuration on the real stack.
func BenchmarkNICTransport(b *testing.B) {
	ty := datatype.Vector(2048, 16, 32, datatype.Float64).Commit()
	src := make([]byte, ty.Extent()+64)
	run := func(k nic.Config) float64 {
		cfg := mpi.NICConfig(2, 1, k)
		var elapsed time.Duration
		mpi.Run(cfg, func(c *mpi.Comm) {
			switch c.Rank() {
			case 0:
				start := c.WtimeDuration()
				c.Send(src, 1, ty, 1, 0)
				c.Recv(nil, 0, datatype.Byte, 1, 1)
				elapsed = c.WtimeDuration() - start
			case 1:
				dst := make([]byte, len(src))
				c.Recv(dst, 1, ty, 0, 0)
				c.Send(nil, 0, datatype.Byte, 0, 1)
			}
		})
		return float64(ty.Size()) / elapsed.Seconds() / (1 << 20)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(nic.Myrinet1280()), "myrinet-MiB/s")
		b.ReportMetric(run(nic.FastEthernet()), "ethernet-MiB/s")
	}
}
